"""The serving layer: catalog, admission control, coalescing, deadlines."""

from __future__ import annotations

import io
import threading
import time

import pytest

from repro import Engine
from repro.guard import (BudgetExceeded, Budgets, InputError, ServiceClosed,
                         ServiceOverloaded)
from repro.serve import (DocumentCatalog, LatencyHistogram, QueryRequest,
                         QueryService, ServiceMetrics)

SITE_XML = ("<site><people>"
            "<person><name>John</name><emailaddress>j@x</emailaddress>"
            "</person>"
            "<person><name>Mary</name></person>"
            "</people></site>")

QUERY = "$input//person[emailaddress]/name"
OTHER_QUERY = "$input//person/name"
THIRD_QUERY = "$input//people"


def site_catalog(**defaults) -> DocumentCatalog:
    catalog = DocumentCatalog(**defaults)
    catalog.add_xml("site", SITE_XML)
    return catalog


class Gate:
    """Blocks a specific query inside a (monkey-patched) engine so tests
    can hold a worker mid-execution deterministically."""

    def __init__(self, engine: Engine, query_text: str) -> None:
        self.started = threading.Event()
        self.release = threading.Event()
        original = engine.execute

        def gated_execute(compiled, *args, **kwargs):
            if compiled.text == query_text:
                self.started.set()
                assert self.release.wait(10), "gate never released"
            return original(compiled, *args, **kwargs)

        engine.execute = gated_execute


# -- LatencyHistogram ----------------------------------------------------------

class TestLatencyHistogram:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.quantile(0.5) == 0.0

    def test_quantiles_bracket_recorded_values(self):
        histogram = LatencyHistogram()
        for milliseconds in range(1, 101):
            histogram.record(milliseconds / 1e3)
        assert histogram.count == 100
        # Log buckets are exact to one bucket width (~26%).
        assert histogram.quantile(0.5) == pytest.approx(0.050, rel=0.30)
        assert histogram.quantile(0.99) == pytest.approx(0.100, rel=0.30)
        assert histogram.quantile(1.0) <= histogram.max

    def test_quantile_never_exceeds_max(self):
        histogram = LatencyHistogram()
        histogram.record(0.0017)
        assert histogram.quantile(0.5) <= histogram.max

    def test_negative_latency_clamped(self):
        histogram = LatencyHistogram()
        histogram.record(-1.0)
        assert histogram.min == 0.0

    def test_overflow_bucket(self):
        histogram = LatencyHistogram()
        histogram.record(1e4)   # slower than the last bound
        assert histogram.quantile(0.99) == pytest.approx(1e4)

    def test_invalid_quantile(self):
        histogram = LatencyHistogram()
        histogram.record(0.01)
        with pytest.raises(ValueError):
            histogram.quantile(0.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_snapshot_is_independent(self):
        histogram = LatencyHistogram()
        histogram.record(0.01)
        copy = histogram.snapshot()
        histogram.record(0.02)
        assert copy.count == 1
        assert histogram.count == 2


# -- ServiceMetrics ------------------------------------------------------------

class TestServiceMetrics:
    def test_counter_lifecycle(self):
        metrics = ServiceMetrics()
        metrics.record_submitted()
        metrics.record_accepted()
        metrics.record_done(latency_seconds=0.01, queue_seconds=0.001,
                            failed=False)
        stats = metrics.stats(queue_depth=3, in_flight=2)
        assert stats.submitted == 1
        assert stats.completed == 1
        assert stats.failed == 0
        assert stats.queue_depth == 3
        assert stats.in_flight == 2
        assert stats.latency_count == 1
        assert stats.qps > 0

    def test_failed_and_deadline_counters(self):
        metrics = ServiceMetrics()
        metrics.record_done(0.01, 0.01, failed=True, deadline_expired=True)
        metrics.record_done(0.01, 0.01, failed=True)
        stats = metrics.stats()
        assert stats.failed == 2
        assert stats.deadline_expired == 1

    def test_shed_and_coalesce_counters(self):
        metrics = ServiceMetrics()
        metrics.record_shed()
        metrics.record_coalesced()
        metrics.record_coalesced()
        stats = metrics.stats()
        assert stats.shed == 1
        assert stats.coalesced == 2

    def test_stats_report_and_dict(self):
        metrics = ServiceMetrics()
        metrics.record_done(0.004, 0.001, failed=False)
        stats = metrics.stats()
        report = stats.report()
        for fragment in ("requests", "backpressure", "throughput",
                         "latency", "p95"):
            assert fragment in report
        data = stats.to_dict()
        assert data["latency"]["count"] == 1
        assert data["shed"] == 0


# -- DocumentCatalog -----------------------------------------------------------

class TestDocumentCatalog:
    def test_add_xml_builds_one_shared_engine(self):
        catalog = site_catalog()
        first = catalog.engine("site")
        second = catalog.engine("site")
        assert first is second
        assert [n.string_value() for n in first.run(QUERY)] == ["John"]

    def test_add_document_and_engine(self, people_doc):
        catalog = DocumentCatalog()
        catalog.add_document("people", people_doc)
        engine = Engine(people_doc)
        catalog.add_engine("ready", engine)
        assert catalog.engine("people").document is people_doc
        assert catalog.engine("ready") is engine

    def test_add_file(self, tmp_path):
        path = tmp_path / "site.xml"
        path.write_text(SITE_XML, encoding="utf-8")
        catalog = DocumentCatalog()
        catalog.add_file("site", str(path))
        assert len(catalog.engine("site").run(OTHER_QUERY)) == 2

    def test_factory_called_once_even_concurrently(self, people_doc):
        calls = []
        barrier = threading.Barrier(6)
        catalog = DocumentCatalog()

        def factory():
            calls.append(1)
            return people_doc

        catalog.add_factory("people", factory)
        engines = []

        def fetch():
            barrier.wait()
            engines.append(catalog.engine("people"))

        threads = [threading.Thread(target=fetch) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(calls) == 1
        assert all(engine is engines[0] for engine in engines)

    def test_engine_defaults_and_overrides(self, people_doc):
        catalog = DocumentCatalog(plan_cache_size=3, use_summary=False)
        catalog.add_document("a", people_doc)
        catalog.add_document("b", people_doc, use_summary=True)
        assert catalog.engine("a").plan_cache.max_size == 3
        assert catalog.engine("a").use_summary is False
        assert catalog.engine("b").use_summary is True

    def test_duplicate_name_rejected(self):
        catalog = site_catalog()
        with pytest.raises(InputError):
            catalog.add_xml("site", SITE_XML)

    def test_bad_name_rejected(self):
        catalog = DocumentCatalog()
        with pytest.raises(InputError):
            catalog.add_xml("", SITE_XML)

    def test_unknown_document(self):
        catalog = site_catalog()
        with pytest.raises(InputError) as excinfo:
            catalog.engine("nope")
        assert "site" in str(excinfo.value)

    def test_names_contains_len_remove(self):
        catalog = site_catalog()
        catalog.add_xml("other", SITE_XML)
        assert catalog.names() == ["other", "site"]
        assert "site" in catalog
        assert len(catalog) == 2
        catalog.remove("other")
        assert "other" not in catalog


# -- QueryService basics -------------------------------------------------------

class TestQueryServiceBasics:
    def test_query_matches_direct_engine_run(self):
        catalog = site_catalog()
        expected = [n.pre for n in catalog.engine("site").run(QUERY)]
        with QueryService(catalog, workers=2, queue_limit=8) as service:
            results = service.query("site", QUERY)
            assert [n.pre for n in results] == expected
            stats = service.stats()
        assert stats.submitted == 1
        assert stats.completed == 1
        assert stats.failed == 0

    def test_request_strategy_honoured(self):
        catalog = site_catalog()
        with QueryService(catalog, workers=1) as service:
            for strategy in ("nljoin", "twigjoin", "scjoin"):
                results = service.query("site", QUERY, strategy=strategy)
                assert [n.string_value() for n in results] == ["John"]

    def test_error_propagates_to_caller(self):
        with QueryService(site_catalog(), workers=1) as service:
            with pytest.raises(InputError):
                service.query("missing", QUERY)
            with pytest.raises(Exception):
                service.query("site", "///")
            stats = service.stats()
        assert stats.failed == 2

    def test_response_carries_timings_and_unwrap(self):
        with QueryService(site_catalog(), workers=1) as service:
            pending = service.submit(QueryRequest("site", QUERY))
            response = pending.response(timeout=10)
        assert response.ok
        assert response.queue_seconds >= 0.0
        assert response.exec_seconds > 0.0
        assert response.total_seconds == pytest.approx(
            response.queue_seconds + response.exec_seconds)
        assert response.unwrap() == response.results
        assert pending.done()

    def test_submit_after_close_raises(self):
        service = QueryService(site_catalog(), workers=1)
        service.close()
        assert service.closed
        with pytest.raises(ServiceClosed):
            service.submit(QueryRequest("site", QUERY))
        service.close()   # idempotent

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            QueryService(site_catalog(), workers=0)
        with pytest.raises(ValueError):
            QueryService(site_catalog(), workers=1, queue_limit=0)


# -- backpressure --------------------------------------------------------------

class TestBackpressure:
    def test_full_queue_sheds_with_typed_error(self):
        catalog = site_catalog()
        gate = Gate(catalog.engine("site"), QUERY)
        service = QueryService(catalog, workers=1, queue_limit=1)
        try:
            leader = service.submit(QueryRequest("site", QUERY))
            assert gate.started.wait(10)   # worker is now held mid-query
            queued = service.submit(QueryRequest("site", OTHER_QUERY))
            with pytest.raises(ServiceOverloaded) as excinfo:
                service.submit(QueryRequest("site", THIRD_QUERY))
            error = excinfo.value
            assert error.code == "REPRO-SERVICE-OVERLOADED"
            assert error.queue_limit == 1
            assert service.stats().shed == 1
            gate.release.set()
            assert len(leader.result(timeout=10)) == 1
            assert len(queued.result(timeout=10)) == 2
        finally:
            gate.release.set()
            service.close()
        stats = service.stats()
        assert stats.completed == 2
        assert stats.shed == 1

    def test_shed_request_can_be_retried_after_drain(self):
        catalog = site_catalog()
        gate = Gate(catalog.engine("site"), QUERY)
        service = QueryService(catalog, workers=1, queue_limit=1)
        try:
            leader = service.submit(QueryRequest("site", QUERY))
            assert gate.started.wait(10)
            queued = service.submit(QueryRequest("site", OTHER_QUERY))
            with pytest.raises(ServiceOverloaded):
                service.submit(QueryRequest("site", THIRD_QUERY))
            gate.release.set()
            leader.result(timeout=10)
            queued.result(timeout=10)
            # After the backlog drains, the same request is admitted.
            assert len(service.query("site", THIRD_QUERY)) == 1
        finally:
            gate.release.set()
            service.close()


# -- request coalescing --------------------------------------------------------

class TestCoalescing:
    def test_identical_inflight_requests_share_one_execution(self):
        catalog = site_catalog()
        engine = catalog.engine("site")
        executions = []
        original = engine.execute

        def counting_execute(compiled, *args, **kwargs):
            executions.append(compiled.text)
            return original(compiled, *args, **kwargs)

        engine.execute = counting_execute
        gate = Gate(engine, QUERY)
        service = QueryService(catalog, workers=2, queue_limit=8)
        try:
            leader = service.submit(QueryRequest("site", QUERY))
            assert gate.started.wait(10)
            followers = [service.submit(QueryRequest("site", QUERY))
                         for _ in range(3)]
            assert all(f.coalesced for f in followers)
            assert not leader.coalesced
            gate.release.set()
            expected = [n.pre for n in leader.result(timeout=10)]
            for follower in followers:
                assert [n.pre for n in follower.result(timeout=10)] \
                    == expected
        finally:
            gate.release.set()
            service.close()
        assert executions.count(QUERY) == 1
        stats = service.stats()
        assert stats.coalesced == 3
        assert stats.accepted == 1

    def test_different_strategy_does_not_coalesce(self):
        catalog = site_catalog()
        gate = Gate(catalog.engine("site"), QUERY)
        service = QueryService(catalog, workers=2, queue_limit=8)
        try:
            service.submit(QueryRequest("site", QUERY,
                                        strategy="twigjoin"))
            assert gate.started.wait(10)
            other = service.submit(QueryRequest("site", QUERY,
                                                strategy="nljoin"))
            assert not other.coalesced
            gate.release.set()
        finally:
            gate.release.set()
            service.close()
        assert service.stats().coalesced == 0

    def test_sequential_duplicates_do_not_coalesce(self):
        with QueryService(site_catalog(), workers=1) as service:
            service.query("site", QUERY)
            service.query("site", QUERY)
            stats = service.stats()
        assert stats.coalesced == 0
        assert stats.completed == 2


# -- deadlines -----------------------------------------------------------------

class TestDeadlines:
    def test_deadline_expired_in_queue(self):
        catalog = site_catalog()
        gate = Gate(catalog.engine("site"), QUERY)
        service = QueryService(catalog, workers=1, queue_limit=8)
        try:
            leader = service.submit(QueryRequest("site", QUERY))
            assert gate.started.wait(10)
            doomed = service.submit(
                QueryRequest("site", OTHER_QUERY, timeout=1e-4))
            time.sleep(0.01)   # let the deadline lapse while queued
            gate.release.set()
            leader.result(timeout=10)
            with pytest.raises(BudgetExceeded) as excinfo:
                doomed.result(timeout=10)
            assert excinfo.value.kind == "wall"
        finally:
            gate.release.set()
            service.close()
        stats = service.stats()
        assert stats.deadline_expired == 1
        assert stats.failed == 1

    def test_generous_deadline_passes(self):
        with QueryService(site_catalog(), workers=1) as service:
            results = service.query("site", QUERY, timeout=30.0)
            assert len(results) == 1
            assert service.stats().deadline_expired == 0

    def test_deadline_tightens_default_budgets(self):
        service = QueryService(site_catalog(), workers=1,
                               default_budgets=Budgets(wall_seconds=60.0,
                                                       max_steps=100_000))
        try:
            tightened = service._budgets_for(remaining=1.5)
            assert tightened.wall_seconds == 1.5
            assert tightened.max_steps == 100_000
            kept = service._budgets_for(remaining=120.0)
            assert kept.wall_seconds == 60.0
            assert service._budgets_for(None) is service.default_budgets
        finally:
            service.close()

    def test_deadline_creates_budgets_when_no_defaults(self):
        service = QueryService(site_catalog(), workers=1)
        try:
            budgets = service._budgets_for(remaining=2.0)
            assert budgets.wall_seconds == 2.0
            assert service._budgets_for(None) is None
        finally:
            service.close()


# -- shutdown ------------------------------------------------------------------

class TestCloseDrain:
    def test_drain_completes_queued_requests(self):
        catalog = site_catalog()
        gate = Gate(catalog.engine("site"), QUERY)
        service = QueryService(catalog, workers=1, queue_limit=8)
        leader = service.submit(QueryRequest("site", QUERY))
        assert gate.started.wait(10)
        queued = service.submit(QueryRequest("site", OTHER_QUERY))
        gate.release.set()
        service.close(drain=True)
        assert leader.done() and queued.done()
        assert len(queued.result()) == 2

    def test_no_drain_fails_queued_requests(self):
        catalog = site_catalog()
        gate = Gate(catalog.engine("site"), QUERY)
        service = QueryService(catalog, workers=1, queue_limit=8)
        leader = service.submit(QueryRequest("site", QUERY))
        assert gate.started.wait(10)
        queued = service.submit(QueryRequest("site", OTHER_QUERY))
        # Close while the worker is still held: the queued request must
        # be failed, not executed.  close() joins the workers, so it
        # runs on a helper thread and the gate opens afterwards.
        closer = threading.Thread(
            target=lambda: service.close(drain=False))
        closer.start()
        with pytest.raises(ServiceClosed):
            queued.result(timeout=10)
        gate.release.set()
        closer.join(timeout=10)
        assert not closer.is_alive()
        leader.result()   # already executing: allowed to finish

    def test_pending_timeout(self):
        catalog = site_catalog()
        gate = Gate(catalog.engine("site"), QUERY)
        service = QueryService(catalog, workers=1, queue_limit=8)
        try:
            pending = service.submit(QueryRequest("site", QUERY))
            assert gate.started.wait(10)
            with pytest.raises(TimeoutError):
                pending.response(timeout=0.01)
            gate.release.set()
            assert pending.result(timeout=10)
        finally:
            gate.release.set()
            service.close()


# -- load generator ------------------------------------------------------------

class TestLoadgen:
    def test_empty_workload_rejected(self):
        from repro.serve import run_load
        with QueryService(site_catalog(), workers=1) as service:
            with pytest.raises(ValueError):
                run_load(service, workload=[], concurrency=1,
                         requests_per_client=1)

    def test_custom_workload_runs_and_reports(self):
        from repro.serve import run_load
        workload = [QueryRequest("site", QUERY),
                    QueryRequest("site", OTHER_QUERY)]
        with QueryService(site_catalog(), workers=2) as service:
            report = run_load(service, workload=workload, concurrency=2,
                              requests_per_client=3, seed=5,
                              coalesce_burst=2)
        assert report.mismatches == 0
        assert report.errors == 0
        assert report.attempted == 2 * 3 + 2
        assert report.succeeded == report.attempted
        row = report.row()
        assert row["clients"] == 2
        assert row["qps"] == pytest.approx(report.throughput)
        assert "succeeded" in report.report()

    def test_report_includes_error_samples(self):
        from repro.serve import run_load
        # A nanosecond deadline expires before any worker can pick the
        # request up; the report must surface samples, not hide them.
        workload = [QueryRequest("site", QUERY)]
        with QueryService(site_catalog(), workers=1) as service:
            report = run_load(service, workload=workload, concurrency=1,
                              requests_per_client=2, timeout=1e-9,
                              coalesce_burst=0)
        assert report.errors == 2
        assert report.succeeded == 0
        assert report.error_samples
        assert "BudgetExceeded" in report.report()


# -- CLI -----------------------------------------------------------------------

class TestServeBenchCli:
    def test_serve_bench_runs_and_checks(self):
        from repro.cli import main
        out = io.StringIO()
        code = main(["serve-bench", "--workers", "2", "--concurrency", "2",
                     "--requests", "2", "--queue-limit", "64",
                     "--seed", "3", "--check"], out=out)
        text = out.getvalue()
        assert code == 0, text
        assert "mismatches=0" in text
        assert "latency" in text


# -- retries (docs/ROBUSTNESS.md) ----------------------------------------------

class FlakyEngine:
    """Patches an engine's execute to fail the first ``failures`` calls."""

    def __init__(self, engine: Engine, failures: int,
                 error_factory=None) -> None:
        from repro.guard import InjectedFault
        self.calls = 0
        self.strategies = []
        self.error_factory = error_factory or \
            (lambda: InjectedFault("transient", site="test"))
        original = engine.execute

        def flaky_execute(compiled, *args, **kwargs):
            self.calls += 1
            self.strategies.append(kwargs.get("strategy"))
            if self.calls <= failures:
                raise self.error_factory()
            return original(compiled, *args, **kwargs)

        engine.execute = flaky_execute


def fast_retry(**overrides):
    from repro.serve import RetryPolicy
    defaults = dict(max_attempts=3, base_delay=0.0, max_delay=0.0,
                    jitter=0.0)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


class TestRetries:
    def test_transient_fault_retried_to_success(self):
        catalog = site_catalog()
        flaky = FlakyEngine(catalog.engine("site"), failures=2)
        with QueryService(catalog, workers=1,
                          retry_policy=fast_retry()) as service:
            pending = service.submit(QueryRequest("site", QUERY))
            response = pending.response(timeout=10)
            assert response.ok
            assert response.attempts == 3
            assert [n.string_value() for n in response.results] == ["John"]
            stats = service.stats()
        assert flaky.calls == 3
        assert stats.retried == 2
        assert stats.completed == 1
        assert stats.failed == 0

    def test_attempts_exhausted_surfaces_typed_error(self):
        from repro.guard import InjectedFault
        catalog = site_catalog()
        flaky = FlakyEngine(catalog.engine("site"), failures=99)
        with QueryService(catalog, workers=1,
                          retry_policy=fast_retry()) as service:
            with pytest.raises(InjectedFault):
                service.query("site", QUERY)
            stats = service.stats()
        assert flaky.calls == 3
        assert stats.retried == 2
        assert stats.failed == 1

    def test_algorithm_error_steps_to_next_strategy(self):
        from repro.guard import AlgorithmError
        catalog = site_catalog()
        engine = catalog.engine("site")
        strategies = []
        original = engine.execute

        def broken_twigjoin(compiled, *args, **kwargs):
            strategies.append(kwargs.get("strategy"))
            if kwargs.get("strategy") == "twigjoin":
                raise AlgorithmError("twigjoin exploded")
            return original(compiled, *args, **kwargs)

        engine.execute = broken_twigjoin
        with QueryService(catalog, workers=1,
                          retry_policy=fast_retry()) as service:
            pending = service.submit(
                QueryRequest("site", QUERY, strategy="twigjoin"))
            response = pending.response(timeout=10)
        assert response.ok
        assert response.attempts == 2
        assert strategies == ["twigjoin", "nljoin"]

    def test_caller_error_never_retried(self):
        from repro.guard import ReproError
        catalog = site_catalog()
        with QueryService(catalog, workers=1,
                          retry_policy=fast_retry()) as service:
            with pytest.raises(ReproError):
                service.query("site", "///")
            stats = service.stats()
        assert stats.retried == 0
        assert stats.failed == 1

    def test_backoff_never_crosses_deadline(self):
        from repro.guard import InjectedFault
        catalog = site_catalog()
        flaky = FlakyEngine(catalog.engine("site"), failures=99)
        # A 10 s backoff cannot fit a 0.5 s deadline: the first failure
        # must surface immediately instead of sleeping past it.
        policy = fast_retry(base_delay=10.0, max_delay=10.0)
        with QueryService(catalog, workers=1,
                          retry_policy=policy) as service:
            started = time.perf_counter()
            with pytest.raises(InjectedFault):
                service.query("site", QUERY, timeout=0.5)
            elapsed = time.perf_counter() - started
        assert flaky.calls == 1
        assert elapsed < 5.0
        assert service.stats().retried == 0

    def test_no_policy_means_no_retry(self):
        from repro.guard import InjectedFault
        catalog = site_catalog()
        flaky = FlakyEngine(catalog.engine("site"), failures=1)
        with QueryService(catalog, workers=1) as service:
            with pytest.raises(InjectedFault):
                service.query("site", QUERY)
        assert flaky.calls == 1


# -- circuit breaker + degraded mode -------------------------------------------

def strict_breaker(**overrides):
    from repro.serve import BreakerPolicy
    defaults = dict(window=4, min_samples=4, failure_threshold=0.5,
                    reset_seconds=60.0)
    defaults.update(overrides)
    return BreakerPolicy(**defaults)


class TestCircuitBreakerIntegration:
    def poisoned_service(self, **service_options):
        from repro.guard import InjectedFault
        catalog = site_catalog()
        engine = catalog.engine("site")

        def poisoned_execute(compiled, *args, **kwargs):
            raise InjectedFault("document is poisoned", site="test")

        engine.execute = poisoned_execute
        return QueryService(catalog, workers=1,
                            breaker_policy=strict_breaker(),
                            **service_options)

    def trip(self, service, n=4):
        from repro.guard import ReproError
        for _ in range(n):
            with pytest.raises(ReproError):
                service.query("site", QUERY)

    def test_failures_open_circuit_and_shed_at_admission(self):
        from repro.guard import CircuitOpen
        with self.poisoned_service() as service:
            self.trip(service)
            with pytest.raises(CircuitOpen) as excinfo:
                service.query("site", QUERY)
            error = excinfo.value
            assert error.code == "REPRO-CIRCUIT-OPEN"
            assert error.document == "site"
            assert error.retry_after_seconds > 0
            stats = service.stats()
        assert stats.breaker_rejected == 1
        assert stats.failed == 4

    def test_circuit_open_serves_provably_empty_degraded(self):
        with self.poisoned_service() as service:
            self.trip(service)
            pending = service.submit(
                QueryRequest("site", "$input//nosuchtag"))
            response = pending.response(timeout=10)
            assert response.ok
            assert response.degraded
            assert response.results == []
            stats = service.stats()
        assert stats.degraded == 1
        assert stats.breaker_rejected == 0

    def test_degraded_mode_disabled_always_rejects(self):
        from repro.guard import CircuitOpen
        with self.poisoned_service(degraded_mode=False) as service:
            self.trip(service)
            with pytest.raises(CircuitOpen):
                service.query("site", "$input//nosuchtag")
            assert service.stats().degraded == 0

    def test_health_reflects_open_breaker(self):
        with self.poisoned_service() as service:
            assert service.health().status == "healthy"
            self.trip(service)
            health = service.health()
            assert health.status == "degraded"  # summary still serves
            site = health.documents[0]
            assert site.document == "site"
            assert site.breaker_state == "open"
            assert site.failures == 4
            assert site.last_error == "REPRO-CHAOS"
            assert site.degraded_capable
            assert "breaker=open" in health.report()

    def test_successful_traffic_keeps_circuit_closed(self):
        catalog = site_catalog()
        with QueryService(catalog, workers=2,
                          breaker_policy=strict_breaker()) as service:
            for _ in range(8):
                service.query("site", QUERY)
            health = service.health()
            assert health.status == "healthy"
            assert health.documents[0].breaker_state == "closed"
            assert service.stats().breaker_rejected == 0

    def test_probe_closes_half_open_circuit(self):
        from repro.guard import InjectedFault
        clock_value = [100.0]
        catalog = site_catalog()
        engine = catalog.engine("site")
        original = engine.execute
        poisoned = [True]

        def flappy_execute(compiled, *args, **kwargs):
            if poisoned[0]:
                raise InjectedFault("poisoned", site="test")
            return original(compiled, *args, **kwargs)

        engine.execute = flappy_execute
        # A controllable clock drives the breaker cooldown; real time
        # drives nothing else in this test.
        service = QueryService(
            catalog, workers=1,
            breaker_policy=strict_breaker(reset_seconds=10.0),
            clock=lambda: clock_value[0])
        try:
            self.trip(service)
            breaker = service.health_tracker.breaker("site")
            assert breaker.state == "open"
            clock_value[0] += 11.0
            assert breaker.state == "half-open"
            poisoned[0] = False   # the document recovered
            health = service.probe("site")
            assert health.last_probe_ok is True
            assert breaker.state == "closed"
            assert len(service.query("site", QUERY)) == 1
        finally:
            service.close()


# -- shutdown with dead workers (regression) -----------------------------------

class WorkerKilled(BaseException):
    """Escapes the worker's Exception handling, killing the thread —
    the only way a real execution can be abandoned mid-flight."""


@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning")
class TestDeadWorkerShutdown:
    def dead_worker_service(self):
        service = QueryService(site_catalog(), workers=1, queue_limit=8)
        service._run = lambda execution: (_ for _ in ()).throw(
            WorkerKilled())
        return service

    def wait_for_worker_death(self, service):
        for _ in range(200):
            if not service._workers[0].is_alive():
                return
            time.sleep(0.01)
        raise AssertionError("worker never died")

    def test_coalesced_followers_unblocked_on_close(self):
        service = self.dead_worker_service()
        leader = service.submit(QueryRequest("site", QUERY))
        self.wait_for_worker_death(service)
        # The leader's execution is still registered in-flight, so an
        # identical request coalesces onto the abandoned execution.
        follower = service.submit(QueryRequest("site", QUERY))
        assert follower.coalesced
        service.close(drain=True)   # must not hang
        with pytest.raises(ServiceClosed):
            leader.result(timeout=5)
        with pytest.raises(ServiceClosed):
            follower.result(timeout=5)

    def test_requests_queued_behind_dead_worker_fail_typed(self):
        service = self.dead_worker_service()
        doomed = service.submit(QueryRequest("site", QUERY))
        self.wait_for_worker_death(service)
        queued = service.submit(QueryRequest("site", OTHER_QUERY))
        service.close(drain=True)
        with pytest.raises(ServiceClosed):
            doomed.result(timeout=5)
        with pytest.raises(ServiceClosed):
            queued.result(timeout=5)
        stats = service.stats()
        assert stats.failed >= 2

    def test_unexpected_engine_exception_is_wrapped_typed(self):
        from repro.guard import InternalError
        catalog = site_catalog()
        engine = catalog.engine("site")

        def buggy_execute(compiled, *args, **kwargs):
            raise RuntimeError("a bug, not a typed error")

        engine.execute = buggy_execute
        with QueryService(catalog, workers=1) as service:
            with pytest.raises(InternalError) as excinfo:
                service.query("site", QUERY)
            assert excinfo.value.code == "REPRO-INTERNAL"
            assert isinstance(excinfo.value.__cause__, RuntimeError)


# -- catalog quarantine and rebuild --------------------------------------------

class TestCatalogQuarantine:
    def write_index(self, tmp_path, name="site"):
        engine = Engine.from_xml(SITE_XML)
        path = tmp_path / f"{name}.rpxc"
        engine.document.save(str(path))
        return path

    def corrupt(self, path):
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF   # flip a payload byte
        path.write_bytes(bytes(data))

    def test_storage_failure_quarantines_document(self):
        import tempfile
        from pathlib import Path
        from repro.guard import DocumentQuarantined
        from repro.xmltree.columnar import StorageError
        with tempfile.TemporaryDirectory() as tmp:
            path = self.write_index(Path(tmp))
            self.corrupt(path)
            catalog = DocumentCatalog()
            catalog.add_file("site", str(path))
            with pytest.raises(StorageError):
                catalog.engine("site")
            assert catalog.quarantined_names() == ["site"]
            assert "site" not in catalog
            # Subsequent lookups explain the quarantine, typed.
            with pytest.raises(DocumentQuarantined) as excinfo:
                catalog.engine("site")
            assert excinfo.value.code == "REPRO-STORAGE-QUARANTINED"
            assert excinfo.value.document == "site"
            record = catalog.quarantined()["site"]
            assert record.path == str(path)

    def test_reregistration_clears_quarantine(self):
        import tempfile
        from pathlib import Path
        from repro.xmltree.columnar import StorageError
        with tempfile.TemporaryDirectory() as tmp:
            path = self.write_index(Path(tmp))
            self.corrupt(path)
            catalog = DocumentCatalog()
            catalog.add_file("site", str(path))
            with pytest.raises(StorageError):
                catalog.engine("site")
            self.write_index(Path(tmp))   # fix the file
            catalog.add_file("site", str(path))   # no duplicate error
            assert catalog.quarantined_names() == []
            assert len(catalog.engine("site").run(OTHER_QUERY)) == 2

    def test_rebuild_falls_back_to_xml_source(self):
        import tempfile
        from pathlib import Path
        with tempfile.TemporaryDirectory() as tmp:
            path = self.write_index(Path(tmp))
            (Path(tmp) / "site.xml").write_text(SITE_XML,
                                                encoding="utf-8")
            self.corrupt(path)
            catalog = DocumentCatalog()
            catalog.add_file("site", str(path), rebuild=True)
            engine = catalog.engine("site")
            assert len(engine.run(OTHER_QUERY)) == 2
            assert catalog.quarantined_names() == []
            assert catalog.rebuilt() == {"site": str(Path(tmp)
                                                     / "site.xml")}
            # Best-effort heal: the index file was rewritten and now
            # loads cleanly.
            fresh = DocumentCatalog()
            fresh.add_file("fresh", str(path))
            assert len(fresh.engine("fresh").run(OTHER_QUERY)) == 2

    def test_parse_error_frees_slot_without_quarantine(self):
        import tempfile
        from pathlib import Path
        from repro.guard import ReproError
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "bad.xml"
            path.write_text("<site><unclosed>", encoding="utf-8")
            catalog = DocumentCatalog()
            catalog.add_file("bad", str(path))
            with pytest.raises(ReproError):
                catalog.engine("bad")
            assert "bad" not in catalog
            assert catalog.quarantined_names() == []
            path.write_text(SITE_XML, encoding="utf-8")
            catalog.add_file("bad", str(path))
            assert len(catalog.engine("bad").run(OTHER_QUERY)) == 2

    def test_remove_clears_quarantine(self):
        import tempfile
        from pathlib import Path
        from repro.xmltree.columnar import StorageError
        with tempfile.TemporaryDirectory() as tmp:
            path = self.write_index(Path(tmp))
            self.corrupt(path)
            catalog = DocumentCatalog()
            catalog.add_file("site", str(path))
            with pytest.raises(StorageError):
                catalog.engine("site")
            catalog.remove("site")
            assert catalog.quarantined_names() == []
