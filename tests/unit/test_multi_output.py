"""The multi-variable tree-pattern extension (optimizer rule (m))."""

import pytest

from repro import Engine
from repro.algebra import (FieldAccess, MapFromItem, MapToItem,
                           TupleTreePattern, VarPlan, optimize_plan,
                           walk_plan)
from repro.algebra.optimizer import OptimizerOptions
from repro.data import member_document, xmark_document
from repro.pattern import parse_pattern
from repro.xqcore import fresh_var

MULTI = OptimizerOptions(enable_multi_output=True)

NESTED_XML = ("<doc><person><name>outer</name><person><name>inner</name>"
              "</person><name>outer2</name></person></doc>")


def multi_engine(document_or_xml):
    if isinstance(document_or_xml, str):
        return Engine.from_xml(document_or_xml, optimizer_options=MULTI)
    return Engine(document_or_xml, optimizer_options=MULTI)


class TestRuleM:
    def build_composition(self, inner_pattern, outer_pattern):
        var = fresh_var("d", origin="external")
        inner = TupleTreePattern(parse_pattern(inner_pattern),
                                 MapFromItem("in", VarPlan(var)))
        outer = TupleTreePattern(parse_pattern(outer_pattern), inner)
        return MapToItem(FieldAccess("out"), outer)

    def patterns(self, plan):
        return [node.pattern.to_string() for node in walk_plan(plan)
                if isinstance(node, TupleTreePattern)]

    def test_merges_keeping_junction(self):
        plan = self.build_composition("IN#in/descendant::a{mid}",
                                      "IN#mid/child::b{out}")
        result = optimize_plan(plan, options=MULTI)
        assert self.patterns(result) == [
            "IN#in/descendant::a{mid}/child::b{out}"]

    def test_disabled_by_default(self):
        plan = self.build_composition("IN#in/descendant::a{mid}",
                                      "IN#mid/child::b{out}")
        result = optimize_plan(plan)
        assert len(self.patterns(result)) == 2

    def test_blocked_for_multi_step_descendant_inner(self):
        # desc::a/desc::b enumerates b with duplicates across nested a's,
        # while the single-output inner deduplicates — unsafe to merge.
        plan = self.build_composition(
            "IN#in/descendant::a/descendant::b{mid}",
            "IN#mid/child::c{out}")
        result = optimize_plan(plan, options=MULTI)
        assert len(self.patterns(result)) == 2

    def test_allowed_for_child_chain_inner(self):
        plan = self.build_composition("IN#in/child::a/child::b{mid}",
                                      "IN#mid/descendant::c{out}")
        result = optimize_plan(plan, options=MULTI)
        assert len(self.patterns(result)) == 1

    def test_second_merge_onto_multi_output(self):
        var = fresh_var("d", origin="external")
        first = TupleTreePattern(parse_pattern("IN#in/descendant::a{x}"),
                                 MapFromItem("in", VarPlan(var)))
        second = TupleTreePattern(
            parse_pattern("IN#x/descendant::b{y}"), first)
        third = TupleTreePattern(parse_pattern("IN#y/child::c{out}"),
                                 second)
        plan = MapToItem(FieldAccess("out"), third)
        result = optimize_plan(plan, options=MULTI)
        assert self.patterns(result) == [
            "IN#in/descendant::a{x}/descendant::b{y}/child::c{out}"]


class TestQ5Semantics:
    def test_q5_single_pattern(self):
        engine = multi_engine(NESTED_XML)
        compiled = engine.compile(
            "for $x in $input//person return $x/name")
        assert compiled.tree_pattern_count() == 1
        (pattern,) = compiled.tree_patterns()
        assert len(pattern.output_fields()) == 2

    @pytest.mark.parametrize("strategy", ["nljoin", "twigjoin", "scjoin"])
    def test_q5_grouped_order_preserved(self, strategy):
        """The Q5 subtlety: grouped order, not document order."""
        engine = multi_engine(NESTED_XML)
        result = engine.run("for $x in $input//person return $x/name",
                            strategy=strategy)
        assert [n.string_value() for n in result] == [
            "outer", "outer2", "inner"]

    def test_path_form_still_document_order(self):
        engine = multi_engine(NESTED_XML)
        result = engine.run("$input//person/name")
        assert [n.string_value() for n in result] == [
            "outer", "inner", "outer2"]

    def test_junction_still_readable(self):
        """The kept junction lets the body use the loop variable twice."""
        engine = multi_engine(NESTED_XML)
        query = ("for $x in $input//person return count($x/name)")
        reference = engine.run(query, optimize=False)
        assert engine.run(query) == reference


class TestDifferential:
    QUERIES = [
        "for $x in $input//person return $x/name",
        "for $x in $input//person[emailaddress] return $x/name",
        "for $x in $input//person[emailaddress] "
        "return $x/profile/interest",
        "for $a in $input//open_auction return $a/bidder/increase",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    @pytest.mark.parametrize("strategy", ["nljoin", "twigjoin", "scjoin"])
    def test_xmark_equivalence(self, query, strategy, small_xmark_doc):
        engine = multi_engine(small_xmark_doc)
        reference = [n.pre for n in engine.run(query, optimize=False)]
        got = [n.pre for n in engine.run(query, strategy=strategy)]
        assert got == reference

    def test_member_doc_equivalence(self):
        doc = member_document(300, depth=5, tag_count=3, seed=17)
        engine = multi_engine(doc)
        for query in ("for $x in $input//t01 return $x/t02",
                      "for $x in $input//t01[t03] return $x//t02"):
            reference = [n.pre for n in engine.run(query, optimize=False)]
            for strategy in ("nljoin", "twigjoin", "scjoin"):
                got = [n.pre for n in engine.run(query, strategy=strategy)]
                assert got == reference, (query, strategy)
