"""Unit tests for the compiled (produce/consume) execution backend.

Covers the codegen-level contracts the differential wall cannot see:
where pipeline breakers land, that generated source is snapshot-stable
(no runtime ids, deterministic across compiles), that the closure cache
on :class:`~repro.engine.CompiledQuery` generates each plan exactly
once, and that typed :class:`~repro.guard.ReproError`\\ s (budget trips,
chaos faults) surface from inside compiled loops exactly as they do
from the interpreter.
"""

import re

import pytest

from repro import Engine
from repro.algebra.ops import Const
from repro.compiled import (CodegenError, CompiledPlan, compile_count,
                            compile_plan)
from repro.engine import BACKENDS
from repro.guard import (BudgetExceeded, Budgets, ChaosSpec, InputError,
                         ReproError, inject)
from repro.physical.base import TreePatternAlgorithm

PATTERN_QUERY = "$input//person[emailaddress]/name"
DDO_QUERY = "$input//person[position() = 1]"
AGGREGATE_QUERY = "count($input//person)"
#: matches the ``t01``/``t02``/``t03`` tags of ``member_document`` — the
#: budget/chaos tests need a query the summary prefilter cannot prove
#: empty (a pruned run never reaches the governor or a chaos site).
MEMBER_QUERY = "$input//t01[t02]/t03"


def compiled_for(engine, query) -> CompiledPlan:
    program = engine.compile(query).codegen["optimized"]
    assert isinstance(program, CompiledPlan), program
    return program


class TestBreakerPlacement:
    def test_pattern_is_a_breaker(self, people_doc):
        engine = Engine(people_doc, backend="compiled")
        program = compiled_for(engine, PATTERN_QUERY)
        assert program.breakers == ("pattern",)

    def test_ddo_is_a_breaker(self, people_doc):
        engine = Engine(people_doc, backend="compiled")
        program = compiled_for(engine, DDO_QUERY)
        assert "ddo" in program.breakers

    def test_aggregate_call_is_a_breaker(self, people_doc):
        engine = Engine(people_doc, backend="compiled")
        program = compiled_for(engine, AGGREGATE_QUERY)
        assert "fn:count" in program.breakers

    def test_constant_plan_has_no_breakers(self):
        program = compile_plan(Const(values=(1, 2)))
        assert program.breakers == ()

    def test_every_algorithm_is_a_breaker_boundary(self):
        # Every strategy materializes its binding list in one evaluate()
        # call, so the codegen treats pattern evaluation as a breaker.
        assert TreePatternAlgorithm.is_pipeline_breaker is True


class TestSnapshotStability:
    CONST_SNAPSHOT = (
        "def _compiled(ctx):\n"
        "    _doc = ctx.document\n"
        "    _strategy = ctx.strategy\n"
        "    _lookupv = ctx.lookup_var\n"
        "    _s1 = list(_k0)\n"
        "    return _s1\n")

    def test_const_source_snapshot(self):
        assert compile_plan(Const(values=(1, 2))).source \
            == self.CONST_SNAPSHOT

    @pytest.mark.parametrize("query", [PATTERN_QUERY, DDO_QUERY,
                                       AGGREGATE_QUERY])
    def test_same_query_generates_identical_source(self, people_doc,
                                                   query):
        first = compiled_for(Engine(people_doc, backend="compiled"), query)
        second = compiled_for(Engine(people_doc, backend="compiled"), query)
        assert first.source == second.source
        assert first.instrumented_source == second.instrumented_source
        assert first.breakers == second.breakers

    @pytest.mark.parametrize("query", [PATTERN_QUERY, DDO_QUERY,
                                       AGGREGATE_QUERY])
    def test_source_embeds_no_runtime_ids(self, people_doc, query):
        program = compiled_for(Engine(people_doc, backend="compiled"),
                               query)
        for source in (program.source, program.instrumented_source):
            assert "0x" not in source
            assert "object at" not in source

    def test_instrumented_variant_is_a_superset(self, people_doc):
        program = compiled_for(Engine(people_doc, backend="compiled"),
                               PATTERN_QUERY)
        assert "_m = ctx.metrics" in program.instrumented_source
        assert "_gov = ctx.governor" in program.instrumented_source
        assert "_m = ctx.metrics" not in program.source


class TestClosureCacheReuse:
    def test_repeated_runs_compile_once(self, people_doc):
        engine = Engine(people_doc, backend="compiled")
        engine.run(PATTERN_QUERY)  # compile + codegen
        before = compile_count()
        reference = engine.run(PATTERN_QUERY)
        for _ in range(10):
            assert engine.run(PATTERN_QUERY) == reference
        assert compile_count() == before

    def test_item_strategy_compiles_the_unoptimized_plan_once(
            self, people_doc):
        engine = Engine(people_doc, backend="compiled")
        compiled = engine.compile(PATTERN_QUERY)
        assert set(compiled.codegen) == {"optimized"}
        before = compile_count()
        reference = engine.run(PATTERN_QUERY, strategy="item")
        assert compile_count() == before + 1  # lazy "plan" role
        assert set(engine.compile(PATTERN_QUERY).codegen) \
            == {"optimized", "plan"}
        for _ in range(5):
            assert engine.run(PATTERN_QUERY, strategy="item") == reference
        assert compile_count() == before + 1

    def test_codegen_refusal_is_negatively_cached(self, people_doc,
                                                  monkeypatch):
        calls = []

        def refusing(plan):
            calls.append(plan)
            raise CodegenError("forced refusal")

        monkeypatch.setattr("repro.engine.compile_plan", refusing)
        engine = Engine(people_doc, backend="compiled")
        reference = Engine(people_doc).run(PATTERN_QUERY)
        for _ in range(5):
            assert engine.run(PATTERN_QUERY) == reference
        assert len(calls) == 1  # the CodegenError is cached, not retried

    def test_interpreted_engine_never_generates_code(self, people_doc):
        engine = Engine(people_doc)
        before = compile_count()
        engine.run(PATTERN_QUERY)
        assert compile_count() == before
        assert engine.compile(PATTERN_QUERY).codegen == {}


class TestTypedErrorsFromCompiledLoops:
    def test_step_budget_trips_typed(self, small_member_doc):
        engine = Engine(small_member_doc, backend="compiled",
                        budgets=Budgets(max_steps=5), strict=True)
        with pytest.raises(BudgetExceeded) as exc:
            engine.run(MEMBER_QUERY)
        assert exc.value.code == "REPRO-BUDGET-STEPS"

    def test_output_budget_trips_typed(self, small_member_doc):
        engine = Engine(small_member_doc, backend="compiled",
                        budgets=Budgets(max_output=1), strict=True)
        with pytest.raises(BudgetExceeded) as exc:
            engine.run("$input//t01")
        assert exc.value.code == "REPRO-BUDGET-OUTPUT"

    def test_budget_error_matches_interpreted(self, small_member_doc):
        budgets = Budgets(max_steps=5)
        errors = {}
        for backend in BACKENDS:
            engine = Engine(small_member_doc, backend=backend,
                            budgets=budgets, strict=True)
            with pytest.raises(BudgetExceeded) as exc:
                engine.run(MEMBER_QUERY)
            # The message embeds elapsed wall time; everything else
            # (code, tripped counter, limit, step count) must match.
            message = re.sub(r"elapsed [0-9.]+ ms", "elapsed <t>",
                             str(exc.value))
            errors[backend] = (exc.value.code, message)
        assert errors["compiled"] == errors["interpreted"]

    def test_chaos_fault_surfaces_typed_and_matches_interpreted(
            self, small_member_doc):
        spec = ChaosSpec(site="eval.ttp", action="raise", rate=1.0)
        outcomes = {}
        for backend in BACKENDS:
            engine = Engine(small_member_doc, backend=backend, strict=True)
            with inject(spec, seed=99):
                with pytest.raises(ReproError) as exc:
                    engine.run(MEMBER_QUERY)
            outcomes[backend] = (type(exc.value).__name__, exc.value.code)
        assert outcomes["compiled"] == outcomes["interpreted"]

    def test_chaos_fault_recovers_via_fallback(self, small_member_doc):
        reference = Engine(small_member_doc).run(MEMBER_QUERY)
        assert reference, "expected a non-empty reference result"
        engine = Engine(small_member_doc, backend="compiled")
        spec = ChaosSpec(site="scjoin.match", action="raise", rate=1.0)
        with inject(spec, seed=99):
            traced = engine.run_traced(MEMBER_QUERY, strategy="scjoin")
        assert traced.results == reference
        assert traced.fallbacks, "expected a recorded strategy fallback"

    def test_unknown_backend_rejected(self, people_doc):
        with pytest.raises(InputError) as exc:
            Engine(people_doc, backend="jit")
        assert "jit" in str(exc.value)
        with pytest.raises(InputError):
            Engine(people_doc).run(PATTERN_QUERY, backend="native")

    def test_compile_plan_rejects_non_item_plans_typed(self):
        with pytest.raises(CodegenError) as exc:
            compile_plan("not a plan")
        assert exc.value.code == "REPRO-CODEGEN"
