"""The tracing substrate: spans, sampling, flight recorder, exporters."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve.metrics import ServiceMetrics
from repro.trace import (FlightRecorder, RatioSampler, Trace, Tracer,
                         chrome_trace, format_seconds, maybe_span,
                         prometheus_text, spans_jsonl,
                         validate_chrome_trace, validate_prometheus)


class FakeClock:
    """A deterministic, manually advanced clock."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now


def fake_tracer(**kwargs) -> Tracer:
    return Tracer(clock=FakeClock(), **kwargs)


# -- span mechanics -----------------------------------------------------------

class TestTrace:
    def test_spans_nest_under_current(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        trace = tracer.begin("query")
        outer = trace.begin_span("outer")
        clock.advance(1.0)
        inner = trace.begin_span("inner")
        clock.advance(2.0)
        trace.end_span(inner)
        clock.advance(0.5)
        trace.end_span(outer)
        trace.finish()
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == trace.root.span_id
        assert inner.duration == pytest.approx(2.0)
        assert outer.duration == pytest.approx(3.5)
        assert trace.duration == pytest.approx(3.5)

    def test_end_span_closes_forgotten_children(self):
        clock = FakeClock()
        trace = Tracer(clock=clock).begin("query")
        outer = trace.begin_span("outer")
        forgotten = trace.begin_span("forgotten")
        clock.advance(1.0)
        trace.end_span(outer)
        assert forgotten.duration == pytest.approx(1.0)
        assert trace.current is trace.root

    def test_finish_is_idempotent_and_absorbs_once(self):
        tracer = fake_tracer()
        trace = tracer.begin("query")
        with trace.span("stage"):
            pass
        trace.finish()
        trace.finish()
        assert tracer.aggregates.traces_finished == 1
        assert tracer.aggregates.span_totals["stage"][0] == 1

    def test_add_span_records_elapsed_region(self):
        clock = FakeClock()
        trace = Tracer(clock=clock).begin("request")
        span = trace.add_span("queue", start=trace.root.start,
                              duration=0.25)
        assert span.parent_id == trace.root.span_id
        assert span.duration == pytest.approx(0.25)

    def test_events_attach_to_current_span(self):
        clock = FakeClock()
        trace = Tracer(clock=clock).begin("query")
        with trace.span("execute") as span:
            clock.advance(0.5)
            trace.event("prune_hit", pattern="//a")
        offset, name, attrs = span.events[0]
        assert name == "prune_hit"
        assert attrs == {"pattern": "//a"}
        assert offset == pytest.approx(0.5)

    def test_span_cap_counts_drops_and_keeps_parents_resolvable(self):
        trace = Tracer(clock=FakeClock(), max_spans=4).begin("query")
        spans = [trace.begin_span(f"s{i}") for i in range(10)]
        for span in reversed(spans):
            trace.end_span(span)
        trace.finish()
        assert trace.dropped_spans == 7  # root + s0..s2 stored
        stored = {span.span_id for span in trace.spans}
        for span in trace.spans:
            assert span.parent_id is None or span.parent_id in stored, (
                "a stored span references a dropped parent")

    def test_event_cap_counts_drops(self):
        trace = Tracer(clock=FakeClock(), max_events=3).begin("query")
        for index in range(5):
            trace.event("tick", index=index)
        assert len(trace.root.events) == 3
        assert trace.dropped_events == 2

    def test_record_op_aggregates_exactly(self):
        trace = fake_tracer().begin("query")
        trace.record_op(1, "Select", 0.5, 10)
        trace.record_op(1, "Select", 0.25, 5)
        trace.record_op(2, "MapToItem", 0.1, 3)
        stat = trace.op_stats[1]
        assert (stat.calls, stat.rows) == (2, 15)
        assert stat.seconds == pytest.approx(0.75)
        assert trace.op_stats[2].name == "MapToItem"

    def test_maybe_span_without_trace_is_noop(self):
        with maybe_span(None, "anything"):
            pass


@settings(max_examples=50, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["begin", "end", "event"]),
              st.floats(min_value=0.001, max_value=10.0,
                        allow_nan=False)),
    max_size=40))
def test_span_nesting_property(script):
    """Under any begin/end/event interleaving with a fake clock:
    parents strictly contain children, no stored span references an
    unknown span_id, and the trace serializes deterministically."""

    def run():
        clock = FakeClock()
        trace = Tracer(clock=clock).begin("query")
        open_spans = []
        for action, delta in script:
            clock.advance(delta)
            if action == "begin":
                open_spans.append(trace.begin_span(f"s{len(open_spans)}"))
            elif action == "end" and open_spans:
                trace.end_span(open_spans.pop())
            elif action == "event":
                trace.event("tick")
        clock.advance(0.5)
        trace.finish()
        return trace

    trace = run()
    by_id = {span.span_id: span for span in trace.spans}
    assert trace.dropped_spans == 0
    for span in trace.spans:
        if span.parent_id is None:
            assert span is trace.root
            continue
        parent = by_id[span.parent_id]          # no orphan span_ids
        assert parent.start <= span.start
        assert span.end <= parent.end + 1e-9    # containment
    # Deterministic under the fake clock: a second identical run
    # serializes identically.
    assert trace.to_dict() == run().to_dict()


# -- sampling and the disabled path -------------------------------------------

class TestTracerAdmission:
    def test_disabled_tracer_hands_out_none(self):
        tracer = Tracer(enabled=False)
        assert tracer.begin("query") is None
        assert tracer.aggregates.traces_started == 0

    def test_ratio_sampler_is_exact_and_deterministic(self):
        sampler = RatioSampler(0.25)
        picks = [sampler.sample() for _ in range(100)]
        assert sum(picks) == 25
        resampled = RatioSampler(0.25)
        assert [resampled.sample() for _ in range(100)] == picks

    @pytest.mark.parametrize("ratio,expected", [(0.0, 0), (1.0, 50)])
    def test_ratio_sampler_extremes(self, ratio, expected):
        sampler = RatioSampler(ratio)
        assert sum(sampler.sample() for _ in range(50)) == expected

    def test_sampled_out_traces_are_counted(self):
        tracer = fake_tracer(sampler=0.5)
        traces = [tracer.begin("query") for _ in range(10)]
        kept = [trace for trace in traces if trace is not None]
        assert len(kept) == 5
        assert tracer.aggregates.traces_sampled_out == 5

    def test_sampler_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            RatioSampler(1.5)


# -- flight recorder ----------------------------------------------------------

def make_trace(tracer, latency):
    trace = tracer.begin("request")
    tracer.clock.advance(latency)
    return trace.finish()


class TestFlightRecorder:
    def test_recent_ring_evicts_oldest(self):
        tracer = fake_tracer()
        recorder = FlightRecorder(recent=3, slowest=0)
        for index in range(5):
            recorder.record(make_trace(tracer, 0.01), latency=0.01)
        snapshot = recorder.snapshot()
        assert snapshot.recorded == 5
        assert len(snapshot.recent) == 3
        assert [entry.sequence for entry in snapshot.recent] == [3, 4, 5]

    def test_slowest_keeps_k_largest(self):
        tracer = fake_tracer()
        recorder = FlightRecorder(recent=2, slowest=3)
        latencies = [0.3, 0.1, 0.9, 0.2, 0.7, 0.5]
        for latency in latencies:
            recorder.record(make_trace(tracer, latency), latency=latency)
        snapshot = recorder.snapshot()
        assert [entry.latency for entry in snapshot.slowest] == [0.9, 0.7,
                                                                 0.5]

    def test_latency_ties_keep_the_older_request(self):
        tracer = fake_tracer()
        recorder = FlightRecorder(recent=1, slowest=2)
        for latency in (0.5, 0.5, 0.5):
            recorder.record(make_trace(tracer, latency), latency=latency)
        snapshot = recorder.snapshot()
        assert [entry.sequence for entry in snapshot.slowest] == [1, 2]

    def test_snapshot_traces_deduplicates(self):
        tracer = fake_tracer()
        recorder = FlightRecorder(recent=8, slowest=4)
        for latency in (0.1, 0.2, 0.3):
            recorder.record(make_trace(tracer, latency), latency=latency)
        traces = recorder.snapshot().traces()
        assert len(traces) == 3
        assert len({trace.trace_id for trace in traces}) == 3

    def test_default_latency_is_trace_duration(self):
        tracer = fake_tracer()
        recorder = FlightRecorder()
        recorder.record(make_trace(tracer, 0.125))
        assert recorder.snapshot().recent[0].latency == pytest.approx(
            0.125)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(recent=0)
        with pytest.raises(ValueError):
            FlightRecorder(slowest=-1)


# -- exporters ----------------------------------------------------------------

def sample_trace():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    trace = tracer.begin("query", query="//a")
    with trace.span("compile_pipeline"):
        clock.advance(0.010)
    with trace.span("execute", strategy="twigjoin"):
        clock.advance(0.002)
        trace.event("decision", algorithm="twigjoin")
        clock.advance(0.020)
    clock.advance(0.001)
    return trace.finish()


class TestChromeExport:
    def test_schema_keys_and_validation(self):
        data = chrome_trace(sample_trace())
        assert set(data) == {"traceEvents", "displayTimeUnit"}
        validate_chrome_trace(data)
        complete = [event for event in data["traceEvents"]
                    if event["ph"] == "X"]
        assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(
            complete[0])
        names = {event["name"] for event in complete}
        assert {"query", "compile_pipeline", "execute"} <= names

    def test_instant_events_exported(self):
        data = chrome_trace(sample_trace())
        instants = [event for event in data["traceEvents"]
                    if event["ph"] == "i"]
        assert any(event["name"] == "decision" for event in instants)

    def test_round_trips_through_json(self):
        data = chrome_trace([sample_trace(), sample_trace()])
        validate_chrome_trace(json.loads(json.dumps(data)))

    def test_validation_rejects_broken_nesting(self):
        trace = sample_trace()
        trace.spans[1].start = trace.root.end + 5.0   # escape the root
        with pytest.raises(ValueError):
            validate_chrome_trace(chrome_trace(trace))

    def test_validation_rejects_missing_keys(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"displayTimeUnit": "ms"})


class TestPrometheusExport:
    def test_tracer_dump_validates(self):
        tracer = Tracer(clock=FakeClock())
        sample = tracer.begin("query")
        with sample.span("execute"):
            pass
        sample.finish()
        text = prometheus_text(tracer=tracer)
        validate_prometheus(text)
        assert "repro_traces_finished_total 1" in text
        assert 'repro_span_seconds_total{span="execute"}' in text

    def test_service_metrics_dump_has_histograms(self):
        metrics = ServiceMetrics()
        metrics.record_submitted()
        metrics.record_accepted()
        metrics.record_done(0.05, 0.01, failed=False)
        text = prometheus_text(metrics=metrics)
        validate_prometheus(text)
        assert 'repro_request_latency_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_request_latency_seconds_count 1" in text
        assert "# TYPE repro_request_latency_seconds histogram" in text

    def test_validation_rejects_untyped_and_malformed_lines(self):
        with pytest.raises(ValueError):
            validate_prometheus("repro_untyped_total 3\n")
        with pytest.raises(ValueError):
            validate_prometheus("# TYPE bad gauge\nbad not-a-number\n")


class TestJsonlExport:
    def test_each_line_is_a_span_object(self):
        lines = list(spans_jsonl([sample_trace()]))
        assert len(lines) == 3   # root + compile_pipeline + execute
        for line in lines:
            record = json.loads(line)
            assert {"trace_id", "trace_name", "name", "span_id",
                    "start", "duration"} <= set(record)


class TestFormatSeconds:
    @pytest.mark.parametrize("seconds,expected", [
        (0.0000042, "4.2us"), (0.0042, "4.200ms"), (4.2, "4.200s")])
    def test_unit_selection(self, seconds, expected):
        assert format_seconds(seconds) == expected
