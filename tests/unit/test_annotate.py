"""The annotation viewer for the document-order analysis."""

from repro import Engine
from repro.rewrite import (annotated_pretty, collect_annotations,
                           facts_label, whole_expression_facts)
from repro.rewrite.facts import Facts, ORDERED, SINGLETON, UNKNOWN

ENGINE = Engine.from_xml("<a/>")


def tpnf(query):
    return ENGINE.compile(query).tpnf


class TestFactsLabel:
    def test_labels(self):
        assert facts_label(SINGLETON) == "one,ord,sep"
        assert facts_label(ORDERED) == "ord"
        assert facts_label(UNKNOWN) == "-"
        assert facts_label(Facts(True, False, True)) == "ord,sep"


class TestWholeExpressionFacts:
    def test_child_chain_is_separated(self):
        assert whole_expression_facts(tpnf("$d/site/people/person")) \
            == "ord,sep"

    def test_descendant_path_is_ordered_only(self):
        assert whole_expression_facts(tpnf("$d//person/name")) == "ord"

    def test_count_is_singleton(self):
        assert "one" in whole_expression_facts(tpnf("count($d//a)"))


class TestAnnotatedPretty:
    def test_for_sources_annotated(self):
        text = annotated_pretty(tpnf("$d/site/people/person[emailaddress]"))
        assert "(* source: ord,sep *)" in text

    def test_descendant_source_not_separated(self):
        text = annotated_pretty(tpnf("$d//person[emailaddress]/name"))
        assert "(* " in text
        # the descendant loop's source is ordered, not separated
        annotations = collect_annotations(
            tpnf("$d//person[emailaddress]/name"))
        labels = set(annotations.values())
        assert any(label.endswith("ord") for label in labels)

    def test_annotations_keyed_by_binder(self):
        annotations = collect_annotations(tpnf("$d/site/people"))
        assert any(key.startswith("for $dot") for key in annotations)

    def test_plain_lines_unchanged(self):
        expr = tpnf("count($d//a)")
        text = annotated_pretty(expr)
        # a call with no binders gets no comment noise
        assert text.count("(*") <= 1
