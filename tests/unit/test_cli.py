"""The command-line interface."""

import io

import pytest

from repro.cli import SAMPLE_DOCUMENT, build_parser, main

from ..conftest import PEOPLE_XML


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestQueryCommand:
    def test_query_sample_document(self):
        code, output = run_cli("query", "$input//person/name")
        assert code == 0
        assert output.splitlines() == ["John", "Mary"]

    def test_query_with_document_file(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text(PEOPLE_XML, encoding="utf-8")
        code, output = run_cli("query", "count($input//person)",
                               "--doc", str(path))
        assert code == 0
        assert output.strip() == "4"

    def test_query_xml_format(self):
        code, output = run_cli("query", "$input//interest", "--format",
                               "xml")
        assert code == 0
        assert '<interest category="art"/>' in output

    def test_query_strategy_flag(self):
        for strategy in ("nljoin", "twigjoin", "scjoin", "streaming",
                         "cost"):
            code, output = run_cli("query", "$input//person/name",
                                   "--strategy", strategy)
            assert code == 0
            assert output.splitlines() == ["John", "Mary"]

    def test_query_no_optimize(self):
        code, output = run_cli("query", "$input//person/name",
                               "--no-optimize")
        assert code == 0
        assert output.splitlines() == ["John", "Mary"]

    def test_query_positional_extension(self):
        code, output = run_cli("query", "$input//person[2]/name",
                               "--positional")
        assert code == 0
        assert output.strip() == "Mary"

    def test_boolean_rendering(self):
        code, output = run_cli("query", "count($input//person) = 2")
        assert output.strip() == "true"

    def test_query_metrics_flag(self):
        code, output = run_cli("query", "$input//person/name", "--metrics")
        assert code == 0
        assert output.splitlines()[:2] == ["John", "Mary"]
        assert "execution counters:" in output
        assert "compile stages:" in output
        assert "plan cache : miss" in output


class TestOtherCommands:
    def test_explain(self):
        code, output = run_cli("explain",
                               "$input//person[emailaddress]/name")
        assert code == 0
        assert "TPNF'" in output
        assert "tree patterns detected: 1" in output
        assert "descendant::person[child::emailaddress]" in output

    def test_compare(self):
        code, output = run_cli("compare", "$input//person/name",
                               "--repeats", "1")
        assert code == 0
        assert "MISMATCH" not in output
        for strategy in ("nljoin", "twigjoin", "scjoin", "stacktree",
                         "streaming", "auto", "cost"):
            assert strategy in output

    def test_compare_metrics_flag(self):
        code, output = run_cli("compare", "$input//person/name",
                               "--repeats", "1", "--metrics")
        assert code == 0
        assert "visited=" in output
        assert "decisions=" in output       # the auto/cost rows

    def test_explain_metrics_flag(self):
        code, output = run_cli("explain", "$input//person/name",
                               "--metrics")
        assert code == 0
        assert "Stage timings" in output
        for stage in ("parse", "normalize", "rewrite", "optimize"):
            assert stage in output

    def test_generate_member_stdout(self):
        code, output = run_cli("generate", "member", "--size", "30",
                               "--tags", "3")
        assert code == 0
        assert output.startswith("<t01")

    def test_generate_to_file(self, tmp_path):
        path = tmp_path / "out.xml"
        code, output = run_cli("generate", "xmark", "--size", "5",
                               "--output", str(path))
        assert code == 0
        assert "wrote" in output
        from repro import Engine
        engine = Engine.from_file(str(path))
        assert engine.run("count($input//person)") == [5]

    def test_generate_deep(self):
        code, output = run_cli("generate", "deep", "--size", "50",
                               "--depth", "6")
        assert code == 0
        assert output.count("<t1>") >= 5

    def test_generated_documents_queryable(self, tmp_path):
        path = tmp_path / "member.xml"
        run_cli("generate", "member", "--size", "200", "--tags", "3",
                "--seed", "5", "--output", str(path))
        code, output = run_cli("query", "count($input/desc::t02)",
                               "--doc", str(path))
        assert code == 0
        assert int(output.strip()) > 0


class TestVisualize:
    def test_plan_dot(self):
        code, output = run_cli("visualize", "$input//person/name")
        assert code == 0
        assert output.startswith("digraph")
        assert "TupleTreePattern" in output

    def test_pattern_dot(self):
        code, output = run_cli("visualize",
                               "$input//person[emailaddress]/name",
                               "--what", "pattern")
        assert code == 0
        assert 'label="descendant"' in output

    def test_pattern_dot_without_patterns(self):
        code, output = run_cli("visualize", "1 + 1", "--what", "pattern")
        assert code == 1
        assert "no tree patterns" in output


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "x", "--strategy", "warp"])

    def test_sample_document_is_valid(self):
        from repro import Engine
        engine = Engine.from_xml(SAMPLE_DOCUMENT)
        assert len(engine.run("$input//person")) == 2
