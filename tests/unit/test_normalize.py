"""Normalization into XQuery Core (the paper's Section 2 / Q1a-n shape)."""

import pytest

from repro.xmltree.axes import Axis
from repro.xqcore import (CCall, CDDO, CFor, CGenCmp, CIf, CLet, CLit,
                          CLogical, CStep, CTypeswitch, CVar,
                          NormalizationError, normalize_query, pretty, walk)
from repro.xquery import parse_query
from repro.xquery.abbrev import resolve_abbreviations


def norm(text):
    return normalize_query(resolve_abbreviations(parse_query(text)))


class TestPathNormalization:
    def test_q1a_outer_shape(self):
        """The paper's Q1a-n: ddo(let $seq := ddo(...) let $last := ...
        for $dot at $position in $seq return child::name)."""
        core = norm("$d//person[emailaddress]/name").core
        assert isinstance(core, CDDO)
        outer_let = core.arg
        assert isinstance(outer_let, CLet)
        assert outer_let.var.name == "seq"
        assert isinstance(outer_let.value, CDDO)
        last_let = outer_let.body
        assert isinstance(last_let, CLet)
        assert last_let.var.name == "last"
        assert isinstance(last_let.value, CCall)
        assert last_let.value.name == "fn:count"
        loop = last_let.body
        assert isinstance(loop, CFor)
        assert loop.var.name == "dot"
        assert loop.position_var is not None
        assert loop.position_var.name == "position"
        assert isinstance(loop.body, CDDO)
        step = loop.body.arg
        assert isinstance(step, CStep)
        assert step.axis is Axis.CHILD
        assert step.test.to_string() == "name"

    def test_predicate_produces_typeswitch(self):
        core = norm("$d/person[emailaddress]").core
        switches = [node for node in walk(core)
                    if isinstance(node, CTypeswitch)]
        assert len(switches) == 1
        switch = switches[0]
        assert len(switch.cases) == 1
        assert switch.cases[0].seqtype == "numeric"
        # numeric branch compares $position with the case variable
        body = switch.cases[0].body
        assert isinstance(body, CGenCmp)
        assert body.op == "="
        # default branch is fn:boolean($v)
        assert isinstance(switch.default_body, CCall)
        assert switch.default_body.name == "fn:boolean"

    def test_predicate_filter_loop_returns_dot(self):
        core = norm("$d/person[emailaddress]").core
        loops = [node for node in walk(core) if isinstance(node, CFor)]
        filter_loops = [loop for loop in loops if loop.where is not None]
        assert len(filter_loops) == 1
        loop = filter_loops[0]
        assert isinstance(loop.body, CVar)
        assert loop.body.var == loop.var

    def test_double_slash_collapses_to_descendant(self):
        core = norm("$d//person").core
        steps = [node for node in walk(core) if isinstance(node, CStep)]
        assert any(step.axis is Axis.DESCENDANT for step in steps)
        assert not any(step.axis is Axis.DESCENDANT_OR_SELF
                       for step in steps)

    def test_positional_double_slash_not_collapsed(self):
        core = norm("$d//person[1]").core
        steps = [node for node in walk(core) if isinstance(node, CStep)]
        assert any(step.axis is Axis.DESCENDANT_OR_SELF for step in steps)

    def test_fresh_variables_distinct(self):
        core = norm("$d/a/b/c").core
        binders = set()
        for node in walk(core):
            for var in node.bound_vars():
                assert var not in binders
                binders.add(var)

    def test_global_variables_registered(self):
        result = norm("$d/person")
        assert set(result.global_vars) == {"d"}
        assert result.global_vars["d"].origin == "external"

    def test_ddo_not_doubled(self):
        core = norm("$d/a/b").core
        for node in walk(core):
            if isinstance(node, CDDO):
                assert not isinstance(node.arg, CDDO)


class TestFLWORNormalization:
    def test_where_attaches_to_for(self):
        core = norm("for $x in $d/a where $x/b return $x").core
        loops = [node for node in walk(core)
                 if isinstance(node, CFor) and node.where is not None]
        assert loops

    def test_where_after_let_becomes_if(self):
        core = norm(
            "for $x in $d/a let $y := $x/b where $y return $y").core
        assert any(isinstance(node, CIf) for node in walk(core))

    def test_multi_for_nests(self):
        core = norm("for $x in $d/a, $y in $x/b return $y").core
        assert isinstance(core, CFor)
        # second clause nested in the body (possibly under nothing else)
        inner = [node for node in walk(core.body) if isinstance(node, CFor)]
        assert inner

    def test_at_variable_bound(self):
        core = norm("for $x at $i in $d/a return $i").core
        assert isinstance(core, CFor)
        assert core.position_var is not None
        assert isinstance(core.body, CVar)
        assert core.body.var == core.position_var


class TestOperatorsAndFunctions:
    def test_comparison(self):
        core = norm('$x = "John"').core
        assert isinstance(core, CGenCmp)

    def test_logical_wraps_ebv(self):
        core = norm("$x and $y").core
        assert isinstance(core, CLogical)
        assert isinstance(core.left, CCall)
        assert core.left.name == "fn:boolean"

    def test_unprefixed_functions_resolved(self):
        core = norm("count($d/a)").core
        assert core.name == "fn:count"

    def test_unknown_function_rejected(self):
        with pytest.raises(NormalizationError):
            norm("frobnicate($x)")

    def test_position_function_maps_to_variable(self):
        core = norm("$d/a[position() = 1]").core
        switches = [node for node in walk(core)
                    if isinstance(node, CTypeswitch)]
        scrutinee = switches[0].input
        assert isinstance(scrutinee, CGenCmp)
        assert isinstance(scrutinee.left, CVar)
        assert scrutinee.left.var.name == "position"

    def test_last_function_maps_to_variable(self):
        core = norm("$d/a[position() = last()]").core
        switches = [node for node in walk(core)
                    if isinstance(node, CTypeswitch)]
        scrutinee = switches[0].input
        assert isinstance(scrutinee.right, CVar)
        assert scrutinee.right.var.name == "last"

    def test_position_outside_focus_rejected(self):
        with pytest.raises(NormalizationError):
            norm("position()")

    def test_quantifier_some(self):
        core = norm("some $x in $d/a satisfies $x/b").core
        assert isinstance(core, CCall)
        assert core.name == "fn:exists"

    def test_quantifier_every(self):
        core = norm("every $x in $d/a satisfies $x/b").core
        assert core.name == "fn:empty"

    def test_sequence_and_literals(self):
        core = norm("(1, 'a', 2.5)").core
        values = [node.value for node in walk(core)
                  if isinstance(node, CLit)]
        assert values == [1, "a", 2.5]

    def test_if_condition_ebv(self):
        core = norm("if ($d/a) then 1 else 2").core
        assert isinstance(core, CIf)
        assert isinstance(core.condition, CCall)
        assert core.condition.name == "fn:boolean"


class TestPretty:
    def test_pretty_mentions_paper_shapes(self):
        text = pretty(norm("$d//person[emailaddress]/name").core)
        assert "ddo(" in text
        assert "let $seq :=" in text
        assert "for $dot at $position in $seq" in text
        assert "typeswitch" in text
        assert "descendant::person" in text

    def test_pretty_unique_names(self):
        text = pretty(norm("$d/a/b").core)
        assert "$seq2" in text or text.count("$seq") >= 2
