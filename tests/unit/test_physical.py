"""The three physical algorithms against each other and hand checks."""

import pytest

from repro.pattern import parse_pattern
from repro.physical import (HeuristicChooser, NLJoin, StackTreeJoin,
                            StaircaseJoin, Strategy, TwigJoin,
                            make_algorithm)
from repro.xmltree import IndexedDocument

DOC = IndexedDocument.from_string(
    '<site><people>'
    '<person id="p1"><name>John</name><emailaddress/>'
    '<profile><interest/><interest/></profile></person>'
    '<person id="p2"><name>Mary</name><profile><interest/></profile></person>'
    '<person id="p3"><name>John</name><emailaddress/></person>'
    '</people></site>')

NESTED = IndexedDocument.from_string(
    "<doc><a><b><a><c/></a></b><c/></a><a><c/></a></doc>")

ALGORITHMS = [NLJoin(), TwigJoin(), StaircaseJoin(), StackTreeJoin()]


def single(algorithm, document, pattern_text, contexts=None):
    pattern = parse_pattern(pattern_text)
    contexts = contexts if contexts is not None else [document.root]
    nodes = algorithm.match_single(document, contexts, pattern.path)
    return [node.pre for node in nodes]


@pytest.mark.parametrize("algorithm", ALGORITHMS,
                         ids=lambda a: a.name)
class TestMatchSingle:
    def test_descendant_name(self, algorithm):
        result = single(algorithm, DOC, "IN#d/descendant::person{o}")
        assert result == [node.pre for node in DOC.stream("person")]

    def test_child_chain(self, algorithm):
        result = single(algorithm, DOC,
                        "IN#d/child::site/child::people/child::person{o}")
        assert result == [node.pre for node in DOC.stream("person")]

    def test_predicate_branch(self, algorithm):
        result = single(algorithm, DOC,
                        "IN#d/descendant::person[child::emailaddress]{o}")
        expected = [node.pre for node in DOC.stream("person")
                    if node.get_attribute("id") in ("p1", "p3")]
        assert result == expected

    def test_nested_predicate(self, algorithm):
        result = single(
            algorithm, DOC,
            "IN#d/descendant::person[child::profile[child::interest]]{o}")
        expected = [node.pre for node in DOC.stream("person")
                    if node.get_attribute("id") in ("p1", "p2")]
        assert result == expected

    def test_continuation_after_predicate(self, algorithm):
        result = single(
            algorithm, DOC,
            "IN#d/descendant::person[child::emailaddress]/child::name{o}")
        assert len(result) == 2

    def test_attribute_step(self, algorithm):
        result = single(algorithm, DOC, "IN#d/descendant::person/@id{o}")
        assert len(result) == 3

    def test_attribute_branch(self, algorithm):
        result = single(algorithm, DOC, "IN#d/descendant::person[@id]{o}")
        assert len(result) == 3

    def test_wildcard(self, algorithm):
        result = single(algorithm, DOC, "IN#d/child::site/child::*{o}")
        assert len(result) == 1  # people

    def test_descendant_or_self(self, algorithm):
        a_nodes = NESTED.stream("a")
        result = single(algorithm, NESTED,
                        "IN#d/descendant-or-self::a{o}", [a_nodes[0]])
        assert result == [a_nodes[0].pre, a_nodes[1].pre]

    def test_no_match(self, algorithm):
        assert single(algorithm, DOC, "IN#d/descendant::zzz{o}") == []

    def test_node_kind_test_excludes_attributes(self, algorithm):
        """Regression: attributes are not children/descendants, so
        node() streams must never surface them (TwigJoin once did)."""
        doc = IndexedDocument.from_string('<a id="1"><b x="2">t</b></a>')
        path = "IN#d/child::a/child::node(){o}"
        result = single(algorithm, doc, path)
        kinds = [doc.node_at(pre).kind for pre in result]
        assert "attribute" not in kinds
        assert kinds == ["element"]

    def test_multiple_contexts_doc_order_dedup(self, algorithm):
        contexts = list(NESTED.stream("a"))
        result = single(algorithm, NESTED, "IN#d/descendant::c{o}", contexts)
        expected = [node.pre for node in NESTED.stream("c")]
        assert result == expected

    def test_nested_contexts(self, algorithm):
        """Contexts where one contains another: still ddo semantics."""
        contexts = list(NESTED.stream("a"))[:2]  # outer a and nested a
        result = single(algorithm, NESTED, "IN#d/descendant::c{o}", contexts)
        pres = [node.pre for node in NESTED.stream("c")[:2]]
        assert result == pres

    def test_results_always_sorted_unique(self, algorithm):
        for pattern in ("IN#d/descendant::a{o}",
                        "IN#d/descendant::a/child::c{o}",
                        "IN#d/descendant::a/descendant::c{o}"):
            result = single(algorithm, NESTED, pattern)
            assert result == sorted(set(result))


@pytest.mark.parametrize("algorithm", ALGORITHMS,
                         ids=lambda a: a.name)
class TestEnumerateBindings:
    def test_spine_outputs(self, algorithm):
        pattern = parse_pattern(
            "IN#d/descendant::person{p}/child::name{n}")
        bindings = algorithm.enumerate_bindings(DOC, DOC.root, pattern.path)
        assert len(bindings) == 3
        for binding in bindings:
            assert binding["n"].parent is binding["p"]

    def test_lexical_order(self, algorithm):
        pattern = parse_pattern(
            "IN#d/descendant::person{p}/child::name{n}")
        bindings = algorithm.enumerate_bindings(DOC, DOC.root, pattern.path)
        keys = [(b["p"].pre, b["n"].pre) for b in bindings]
        assert keys == sorted(keys)

    def test_branch_filtering(self, algorithm):
        pattern = parse_pattern(
            "IN#d/descendant::person[child::emailaddress]{p}")
        bindings = algorithm.enumerate_bindings(DOC, DOC.root, pattern.path)
        assert len(bindings) == 2


class TestAgreement:
    PATTERNS = [
        "IN#d/descendant::a{o}",
        "IN#d/descendant::a/child::c{o}",
        "IN#d/descendant::a[child::c]{o}",
        "IN#d/descendant::a[child::b[child::a]]{o}",
        "IN#d/child::doc/descendant::c{o}",
        "IN#d/descendant-or-self::node()/child::c{o}",
        "IN#d/descendant::b/descendant::c{o}",
    ]

    @pytest.mark.parametrize("pattern_text", PATTERNS)
    def test_all_algorithms_agree(self, pattern_text):
        results = {algorithm.name: single(algorithm, NESTED, pattern_text)
                   for algorithm in ALGORITHMS}
        reference = results["nljoin"]
        assert all(result == reference for result in results.values())


class TestFallbacks:
    def test_twig_falls_back_on_reverse_axis(self):
        pattern = parse_pattern("IN#d/descendant::c{o}")
        from repro.pattern import PatternPath, PatternStep
        from repro.xmltree.axes import Axis
        from repro.xmltree.nodetest import AnyKindTest
        path = PatternPath((
            PatternStep(Axis.DESCENDANT, AnyKindTest(), (), None),
            PatternStep(Axis.PARENT, AnyKindTest(), (), "o"),
        ))
        twig = TwigJoin()
        nl = NLJoin()
        assert ([n.pre for n in twig.match_single(NESTED, [NESTED.root], path)]
                == [n.pre for n in nl.match_single(NESTED, [NESTED.root], path)])

    def test_staircase_bindings_fall_back(self):
        pattern = parse_pattern("IN#d/descendant::a{p}/child::c{n}")
        sc = StaircaseJoin()
        nl = NLJoin()
        assert (sc.enumerate_bindings(NESTED, NESTED.root, pattern.path)
                == nl.enumerate_bindings(NESTED, NESTED.root, pattern.path))


class TestStrategyFactory:
    def test_make_all(self):
        assert make_algorithm("nljoin").name == "nljoin"
        assert make_algorithm(Strategy.TWIG_JOIN).name == "twigjoin"
        assert make_algorithm("scjoin").name == "scjoin"
        assert make_algorithm("auto", DOC).name == "auto"

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            make_algorithm("quantum")

    def test_heuristic_prefers_navigation_for_small_regions(self):
        from repro.data import deep_member_document
        deep = deep_member_document(2000, 10)
        chooser = HeuristicChooser(deep)
        # A context deep in the tree: its region is tiny relative to the
        # 2000-element t1 stream the index algorithms would scan.
        context = deep.stream("t1")[-1].parent
        pattern = parse_pattern("IN#d/child::t1{o}")
        chooser.match_single(deep, [context], pattern.path)
        assert chooser.decisions[-1] == "nljoin"

    def test_heuristic_prefers_twig_for_branching(self):
        chooser = HeuristicChooser(DOC)
        pattern = parse_pattern(
            "IN#d/descendant::person[child::emailaddress]{o}")
        chooser.match_single(DOC, [DOC.root], pattern.path)
        assert chooser.decisions[-1] == "twigjoin"

    def test_heuristic_prefers_staircase_for_plain_spines(self):
        chooser = HeuristicChooser(DOC)
        pattern = parse_pattern("IN#d/descendant::person/child::name{o}")
        chooser.match_single(DOC, [DOC.root], pattern.path)
        assert chooser.decisions[-1] == "scjoin"

    def test_heuristic_matches_reference_results(self):
        chooser = HeuristicChooser(DOC)
        nl = NLJoin()
        for text in ("IN#d/descendant::person{o}",
                     "IN#d/descendant::person[child::emailaddress]{o}"):
            pattern = parse_pattern(text)
            assert (chooser.match_single(DOC, [DOC.root], pattern.path)
                    == nl.match_single(DOC, [DOC.root], pattern.path))
