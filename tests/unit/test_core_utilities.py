"""Core AST utilities: traversal, free variables, substitution,
alpha-canonical printing; plus evaluator error paths."""

import pytest

from repro.algebra import (Const, DDOPlan, DynamicError, EvalContext,
                           FieldAccess, TreeJoin, eval_item, eval_tuples)
from repro.algebra.ops import InputTuple
from repro.physical import NLJoin
from repro.xmltree import IndexedDocument
from repro.xmltree.axes import Axis
from repro.xmltree.nodetest import NameTest
from repro.xqcore import (CCall, CDDO, CFor, CGenCmp, CLet, CLit, CSeq,
                          CStep, CVar, alpha_canonical, count_nodes,
                          free_vars, fresh_var, normalize_query, pretty,
                          substitute, usage_count, walk)
from repro.xquery import parse_query


def step(name, input_expr):
    return CStep(Axis.CHILD, NameTest(name), input_expr)


class TestWalk:
    def test_preorder(self):
        x = fresh_var("x")
        expr = CLet(x, CLit(1), CSeq([CVar(x), CLit(2)]))
        kinds = [type(node).__name__ for node in walk(expr)]
        assert kinds == ["CLet", "CLit", "CSeq", "CVar", "CLit"]

    def test_count_nodes(self):
        x = fresh_var("x")
        expr = CLet(x, CLit(1), CVar(x))
        assert count_nodes(expr) == 3


class TestFreeVars:
    def test_bound_variables_excluded(self):
        x = fresh_var("x")
        expr = CLet(x, CLit(1), CVar(x))
        assert free_vars(expr) == set()

    def test_free_variable_found(self):
        x, y = fresh_var("x"), fresh_var("y")
        expr = CLet(x, CVar(y), CVar(x))
        assert free_vars(expr) == {y}

    def test_for_binders(self):
        x, i, d = fresh_var("x"), fresh_var("i"), fresh_var("d")
        loop = CFor(x, i, CVar(d), None,
                    CGenCmp("=", CVar(i), CLit(1)))
        assert free_vars(loop) == {d}

    def test_identity_based_no_shadowing(self):
        # two distinct vars named "x": no capture confusion
        x1, x2 = fresh_var("x"), fresh_var("x")
        expr = CLet(x1, CLit(1), CLet(x2, CVar(x1), CVar(x2)))
        assert free_vars(expr) == set()


class TestSubstitute:
    def test_replaces_target(self):
        x = fresh_var("x")
        result = substitute(CSeq([CVar(x), CLit(2)]), x, CLit(9))
        assert result == CSeq([CLit(9), CLit(2)])

    def test_leaves_other_vars(self):
        x, y = fresh_var("x"), fresh_var("y")
        result = substitute(CVar(y), x, CLit(9))
        assert result == CVar(y)

    def test_shares_unchanged_subtrees(self):
        x = fresh_var("x")
        untouched = CSeq([CLit(1), CLit(2)])
        expr = CSeq([untouched, CVar(x)])
        result = substitute(expr, x, CLit(9))
        assert result.items[0] is untouched

    def test_usage_count_basics(self):
        x = fresh_var("x")
        expr = CSeq([CVar(x), CVar(x), CLit(1)])
        assert usage_count(expr, x) == 2


class TestAlphaCanonical:
    def parse_core(self, text):
        return normalize_query(parse_query(text)).core

    def test_identical_for_renamed_queries(self):
        # same query normalized twice → different Var identities, same
        # canonical string
        one = alpha_canonical(self.parse_core("$d//a[b]/c"))
        two = alpha_canonical(self.parse_core("$d//a[b]/c"))
        assert one == two

    def test_distinguishes_different_queries(self):
        one = alpha_canonical(self.parse_core("$d//a[b]/c"))
        two = alpha_canonical(self.parse_core("$d//a[c]/b"))
        assert one != two

    def test_pretty_assigns_numbered_duplicates(self):
        text = pretty(self.parse_core("$d/a/b/c"))
        assert "$seq" in text
        assert "$seq2" in text


class TestEvaluatorErrors:
    DOC = IndexedDocument.from_string("<a><b/></a>")

    def ctx(self):
        return EvalContext(document=self.DOC, strategy=NLJoin())

    def test_ddo_over_atomics_raises(self):
        with pytest.raises(DynamicError):
            eval_item(DDOPlan(Const((1, 2))), self.ctx())

    def test_treejoin_over_atomics_raises(self):
        plan = TreeJoin(Axis.CHILD, NameTest("b"), Const((1,)))
        with pytest.raises(DynamicError):
            eval_item(plan, self.ctx())

    def test_unknown_field_raises(self):
        context = self.ctx()
        context.tuple_stack.append({"known": [1]})
        with pytest.raises(DynamicError):
            eval_item(FieldAccess("unknown"), context)

    def test_input_tuple_without_stack_raises(self):
        with pytest.raises(DynamicError):
            eval_tuples(InputTuple(), self.ctx())

    def test_ttp_over_non_node_context_raises(self):
        from repro.algebra import MapFromItem, TupleTreePattern
        from repro.pattern import parse_pattern
        plan = TupleTreePattern(parse_pattern("IN#f/child::b{o}"),
                                MapFromItem("f", Const((42,))))
        with pytest.raises(DynamicError):
            eval_tuples(plan, self.ctx())

    def test_ttp_without_document_raises(self):
        from repro.algebra import MapFromItem, TupleTreePattern
        from repro.pattern import parse_pattern
        plan = TupleTreePattern(parse_pattern("IN#f/child::b{o}"),
                                MapFromItem("f", Const((1,))))
        context = EvalContext(document=None, strategy=NLJoin())
        with pytest.raises(DynamicError):
            eval_tuples(plan, context)
