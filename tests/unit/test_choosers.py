"""The AUTO and COST choosers on both evaluation paths."""

import pytest

from repro.data import member_document
from repro.pattern import parse_pattern
from repro.physical import (CostBasedChooser, HeuristicChooser, NLJoin,
                            make_algorithm)


@pytest.fixture(scope="module")
def doc():
    return member_document(600, depth=5, tag_count=4, seed=31)


@pytest.fixture(scope="module")
def reference():
    return NLJoin()


PATHS = [
    "IN#d/descendant::t01{o}",
    "IN#d/descendant::t01[child::t02]{o}",
    "IN#d/child::t01/child::t02{o}",
    "IN#d/descendant::t01{p}/child::t02{o}",
]


@pytest.mark.parametrize("chooser_factory", [HeuristicChooser,
                                             CostBasedChooser],
                         ids=["auto", "cost"])
class TestChoosers:
    @pytest.mark.parametrize("pattern_text", PATHS[:3])
    def test_match_single_agrees(self, chooser_factory, pattern_text, doc,
                                 reference):
        chooser = chooser_factory(doc)
        path = parse_pattern(pattern_text).path
        expected = reference.match_single(doc, [doc.root], path)
        assert chooser.match_single(doc, [doc.root], path) == expected

    def test_enumerate_bindings_agrees(self, chooser_factory, doc,
                                       reference):
        chooser = chooser_factory(doc)
        path = parse_pattern(PATHS[3]).path
        expected = reference.enumerate_bindings(doc, doc.root, path)
        got = chooser.enumerate_bindings(doc, doc.root, path)
        assert [sorted((k, v.pre) for k, v in b.items()) for b in got] == \
            [sorted((k, v.pre) for k, v in b.items()) for b in expected]

    def test_decisions_logged(self, chooser_factory, doc):
        chooser = chooser_factory(doc)
        path = parse_pattern(PATHS[0]).path
        chooser.match_single(doc, [doc.root], path)
        chooser.match_single(doc, [doc.root], path)
        assert len(chooser.decisions) == 2

    def test_per_context_decisions_can_differ(self, chooser_factory, doc):
        """The choosers decide per evaluation, so a root context and a
        leaf context may pick different algorithms."""
        chooser = chooser_factory(doc)
        path = parse_pattern("IN#d/child::t02{o}").path
        leafish = doc.all_elements()[-1]
        chooser.match_single(doc, [doc.root], path)
        chooser.match_single(doc, [leafish], path)
        assert len(chooser.decisions) == 2  # both calls went through


class TestStrategyEnumCompleteness:
    def test_every_concrete_strategy_instantiable(self, doc):
        for name in ("nljoin", "twigjoin", "scjoin", "stacktree",
                     "streaming"):
            algorithm = make_algorithm(name)
            assert algorithm.name == name

    def test_choosers_need_no_document_until_use(self):
        # construction without a document must not raise
        assert make_algorithm("auto").name == "auto"
        assert make_algorithm("cost").name == "cost"

    def test_all_strategies_resolve_through_engine(self, doc):
        from repro import Engine
        engine = Engine(doc)
        expected = [n.pre for n in engine.run("$input//t02",
                                              strategy="nljoin")]
        for name in ("twigjoin", "scjoin", "stacktree", "streaming",
                     "auto", "cost"):
            got = [n.pre for n in engine.run("$input//t02", strategy=name)]
            assert got == expected, name
