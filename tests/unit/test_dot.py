"""DOT rendering of plans and patterns."""

import re

from repro import Engine
from repro.algebra import pattern_to_dot, plan_to_dot
from repro.pattern import parse_pattern

ENGINE = Engine.from_xml("<a><b/></a>")


def edges_of(dot_text):
    return re.findall(r"(\w+) -> (\w+)", dot_text)


def nodes_of(dot_text):
    return re.findall(r'^\s*(\w+) \[label="', dot_text, re.MULTILINE)


class TestPlanDot:
    def test_structure(self):
        compiled = ENGINE.compile("$input//person[emailaddress]/name")
        dot = plan_to_dot(compiled.optimized)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert "TupleTreePattern" in dot
        assert "MapFromItem" in dot

    def test_every_non_root_node_has_an_edge(self):
        compiled = ENGINE.compile('$input//a[b = "x"]/c')
        dot = plan_to_dot(compiled.optimized)
        nodes = set(nodes_of(dot)) - {"node"}
        touched = {name for edge in edges_of(dot) for name in edge}
        # exactly one node (the root) may be untouched in a 1-node plan
        assert len(nodes - touched) <= 1

    def test_dependent_edges_dashed(self):
        compiled = ENGINE.compile('$input//a[b = "x"]/c')
        dot = plan_to_dot(compiled.optimized)
        assert "style=dashed" in dot
        assert 'label="dep"' in dot

    def test_unoptimized_plan_renders(self):
        compiled = ENGINE.compile("for $x in $input//a return $x/b")
        dot = plan_to_dot(compiled.plan, name="raw")
        assert 'digraph "raw"' in dot
        assert "TreeJoin" in dot

    def test_quotes_escaped(self):
        # XQuery escapes a quote by doubling it; the DOT label must
        # backslash-escape the resulting literal quote character.
        compiled = ENGINE.compile('$input//a[b = "quo""te"]')
        dot = plan_to_dot(compiled.optimized)
        assert '\\"' in dot
        assert dot.count("digraph") == 1


class TestPatternDot:
    def test_spine_and_branch(self):
        pattern = parse_pattern(
            "IN#dot/descendant::person[child::emailaddress]/child::name{out}")
        dot = pattern_to_dot(pattern)
        assert 'label="descendant"' in dot
        assert 'label="child"' in dot
        assert "name {out}" in dot
        # output-annotated nodes are double-circled
        assert "peripheries=2" in dot

    def test_positional_annotation_shown(self):
        pattern = parse_pattern("IN#dot/child::a[2]{o}")
        dot = pattern_to_dot(pattern)
        assert "[2]" in dot

    def test_context_box(self):
        pattern = parse_pattern("IN#ctx/child::a{o}")
        dot = pattern_to_dot(pattern)
        assert "IN#ctx" in dot
        assert "shape=box" in dot

    def test_edge_count_matches_steps(self):
        pattern = parse_pattern(
            "IN#d/descendant::a[child::b[child::c]]/child::e{o}")
        dot = pattern_to_dot(pattern)
        # ctx→a, a→b, b→c, a→e
        assert len(edges_of(dot)) == 4
