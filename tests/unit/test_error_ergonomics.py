"""Parser error ergonomics: every syntax error locates itself.

Satellite of the guardrails work: :class:`XQuerySyntaxError` and
:class:`XMLSyntaxError` always carry a line/column span and render a
caret-annotated snippet of the offending input.
"""

import pytest

from repro.guard import ReproError
from repro.xmltree import parse_xml
from repro.xmltree.parser import XMLSyntaxError
from repro.xquery import parse_query
from repro.xquery.lexer import XQuerySyntaxError, tokenize

MALFORMED_QUERIES = [
    "for $x in",                      # truncated FLWOR
    "for $x in $d return",            # truncated return
    "$input//person[",                # unterminated predicate
    "( 1, 2",                         # unterminated parenthesis
    "$input/child::",                 # missing node test
    "let $x := 1 return $",           # bare dollar
    "'unterminated",                  # unterminated string
    "1 ~ 2",                          # stray character
    "for x in $d return x",           # variable without '$'
    "$input//person)",                # trailing input
]

MALFORMED_XML = [
    "<a><b></a>",                     # mismatched close tag
    "<a",                             # truncated open tag
    "<a></a><b/>",                    # trailing content
    "<a attr=foo/>",                  # unquoted attribute
    "<a><b/&></a>",                   # stray character
    "text only",                      # no root element
    "<a attr='1' attr='2'/>",         # duplicate attribute
    "<a>&unknown;</a>",               # unknown entity
]


class TestXQueryErrors:
    @pytest.mark.parametrize("query", MALFORMED_QUERIES)
    def test_error_carries_span_and_caret(self, query):
        with pytest.raises(XQuerySyntaxError) as exc:
            parse_query(query)
        err = exc.value
        assert isinstance(err, ReproError)
        assert err.code == "REPRO-XQ-SYNTAX"
        assert err.span is not None, f"no span for {query!r}"
        assert err.span.line >= 1 and err.span.column >= 1
        rendered = str(err)
        assert f"line {err.span.line}, column {err.span.column}" in rendered
        assert rendered.splitlines()[-1].strip("^ ") == ""
        assert "^" in rendered

    def test_multiline_query_points_at_right_line(self):
        with pytest.raises(XQuerySyntaxError) as exc:
            parse_query("for $x in $d\nreturn (")
        assert exc.value.span.line == 2

    def test_tokenize_errors_also_attach(self):
        with pytest.raises(XQuerySyntaxError) as exc:
            tokenize("1 ~ 2")
        assert exc.value.span is not None

    def test_except_value_error_still_works(self):
        with pytest.raises(ValueError):
            parse_query("for $x in")


class TestXMLErrors:
    @pytest.mark.parametrize("text", MALFORMED_XML)
    def test_error_carries_span_and_caret(self, text):
        with pytest.raises(XMLSyntaxError) as exc:
            parse_xml(text)
        err = exc.value
        assert isinstance(err, ReproError)
        assert err.code == "REPRO-XML-SYNTAX"
        assert err.span is not None, f"no span for {text!r}"
        assert err.span.line >= 1 and err.span.column >= 1
        rendered = str(err)
        assert f"line {err.span.line}" in rendered
        assert "^" in rendered

    def test_multiline_document_points_at_right_line(self):
        with pytest.raises(XMLSyntaxError) as exc:
            parse_xml("<a>\n<b>\n</c>\n</a>")
        assert exc.value.span.line == 3
