"""XQuery surface parser: shapes, precedence, contextual keywords."""

import pytest

from repro.xmltree.axes import Axis
from repro.xmltree.nodetest import AnyKindTest, NameTest, WildcardTest
from repro.xquery import ast, parse_query
from repro.xquery.lexer import XQuerySyntaxError


class TestPaths:
    def test_simple_relative_step(self):
        expr = parse_query("person")
        assert isinstance(expr, ast.AxisStep)
        assert expr.axis is Axis.CHILD
        assert expr.test == NameTest("person")

    def test_axis_syntax(self):
        expr = parse_query("descendant::person")
        assert expr.axis is Axis.DESCENDANT

    def test_axis_aliases(self):
        assert parse_query("desc::a").axis is Axis.DESCENDANT
        assert parse_query("dos::node()").axis is Axis.DESCENDANT_OR_SELF

    def test_attribute_abbreviation(self):
        expr = parse_query("@id")
        assert expr.axis is Axis.ATTRIBUTE
        assert expr.test == NameTest("id")

    def test_parent_abbreviation(self):
        expr = parse_query("..")
        assert expr.axis is Axis.PARENT
        assert isinstance(expr.test, AnyKindTest)

    def test_wildcard(self):
        expr = parse_query("*")
        assert isinstance(expr.test, WildcardTest)

    def test_kind_tests(self):
        assert isinstance(parse_query("node()").test, AnyKindTest)
        assert parse_query("text()").test.to_string() == "text()"

    def test_binary_path(self):
        expr = parse_query("$d/person/name")
        assert isinstance(expr, ast.PathExpr)
        assert isinstance(expr.right, ast.AxisStep)
        assert isinstance(expr.left, ast.PathExpr)
        assert isinstance(expr.left.left, ast.VarRef)

    def test_double_slash_expands(self):
        expr = parse_query("$d//person")
        # $d/descendant-or-self::node()/child::person
        assert isinstance(expr, ast.PathExpr)
        dos = expr.left.right
        assert dos.axis is Axis.DESCENDANT_OR_SELF
        assert isinstance(dos.test, AnyKindTest)

    def test_absolute_path(self):
        expr = parse_query("/site/people")
        assert isinstance(expr, ast.PathExpr)
        root = expr.left.left
        assert isinstance(root, ast.RootExpr)

    def test_bare_root(self):
        assert isinstance(parse_query("/"), ast.RootExpr)

    def test_leading_double_slash(self):
        expr = parse_query("//person")
        assert isinstance(expr, ast.PathExpr)
        assert isinstance(expr.left.left, ast.RootExpr)

    def test_predicates_attach_to_step(self):
        expr = parse_query("person[emailaddress][name]")
        assert isinstance(expr, ast.AxisStep)
        assert len(expr.predicates) == 2

    def test_filter_expr_on_variable(self):
        expr = parse_query("$x[1]")
        assert isinstance(expr, ast.FilterExpr)
        assert isinstance(expr.primary, ast.VarRef)

    def test_parenthesized_path_continuation(self):
        expr = parse_query("(/t1[1])/t1[1]")
        assert isinstance(expr, ast.PathExpr)

    def test_context_item(self):
        assert isinstance(parse_query("."), ast.ContextItem)

    def test_keywords_usable_as_element_names(self):
        expr = parse_query("$d/for/return")
        assert expr.right.test == NameTest("return")
        assert expr.left.right.test == NameTest("for")


class TestFLWOR:
    def test_single_for(self):
        expr = parse_query("for $x in $d/person return $x")
        assert isinstance(expr, ast.FLWORExpr)
        assert len(expr.clauses) == 1
        clause = expr.clauses[0]
        assert isinstance(clause, ast.ForClause)
        assert clause.var == "x"
        assert clause.position_var is None

    def test_for_with_at(self):
        expr = parse_query("for $x at $i in $d/a return $i")
        assert expr.clauses[0].position_var == "i"

    def test_multi_variable_for(self):
        expr = parse_query(
            "for $x in $d/site, $y in $x/people return $y")
        assert len(expr.clauses) == 2
        assert all(isinstance(c, ast.ForClause) for c in expr.clauses)

    def test_let(self):
        expr = parse_query("let $x := 1 return $x")
        assert isinstance(expr.clauses[0], ast.LetClause)

    def test_where(self):
        expr = parse_query("for $x in $d/a where $x/b return $x")
        assert isinstance(expr.clauses[1], ast.WhereClause)

    def test_mixed_clauses(self):
        expr = parse_query(
            "for $x in $d/a let $y := $x/b where $y return $y")
        kinds = [type(c).__name__ for c in expr.clauses]
        assert kinds == ["ForClause", "LetClause", "WhereClause"]

    def test_missing_return_raises(self):
        with pytest.raises(XQuerySyntaxError):
            parse_query("for $x in $d/a")


class TestOperators:
    def test_comparison(self):
        expr = parse_query("$x = 1")
        assert isinstance(expr, ast.BinaryExpr)
        assert expr.op == "="

    def test_all_comparisons(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            expr = parse_query(f"1 {op} 2")
            assert expr.op == op

    def test_and_or_precedence(self):
        expr = parse_query("$a = 1 and $b = 2 or $c = 3")
        assert expr.op == "or"
        assert expr.left.op == "and"

    def test_arithmetic_precedence(self):
        expr = parse_query("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_div_mod(self):
        assert parse_query("4 div 2").op == "div"
        assert parse_query("4 mod 2").op == "mod"

    def test_range(self):
        expr = parse_query("1 to 5")
        assert expr.op == "to"

    def test_union(self):
        expr = parse_query("$a/b | $a/c")
        assert expr.op == "|"

    def test_unary_minus(self):
        expr = parse_query("-1")
        assert isinstance(expr, ast.UnaryExpr)

    def test_comparison_of_paths(self):
        expr = parse_query('$d/person/name = "John"')
        assert expr.op == "="
        assert isinstance(expr.left, ast.PathExpr)


class TestOtherExpressions:
    def test_if(self):
        expr = parse_query("if ($x) then 1 else 2")
        assert isinstance(expr, ast.IfExpr)

    def test_quantified(self):
        expr = parse_query("some $x in $d/a satisfies $x = 1")
        assert isinstance(expr, ast.QuantifiedExpr)
        assert expr.quantifier == "some"

    def test_function_call(self):
        expr = parse_query("count($d/person)")
        assert isinstance(expr, ast.FunctionCall)
        assert expr.name == "count"
        assert len(expr.args) == 1

    def test_prefixed_function(self):
        expr = parse_query("fn:boolean($x)")
        assert expr.name == "fn:boolean"

    def test_sequence(self):
        expr = parse_query("1, 2, 3")
        assert isinstance(expr, ast.SequenceExpr)
        assert len(expr.items) == 3

    def test_empty_sequence(self):
        expr = parse_query("()")
        assert isinstance(expr, ast.SequenceExpr)
        assert expr.items == []

    def test_string_literals(self):
        assert parse_query('"abc"').value == "abc"
        assert parse_query("'abc'").value == "abc"

    def test_numeric_literals(self):
        assert parse_query("42").value == 42
        assert parse_query("3.5").value == 3.5

    def test_to_string_round_trip(self):
        for text in ("$d//person[emailaddress]/name",
                     "for $x in $d/a where $x/b return $x/c",
                     "if ($x = 1) then $a else $b"):
            expr = parse_query(text)
            reparsed = parse_query(expr.to_string())
            assert reparsed.to_string() == expr.to_string()


class TestParseErrors:
    @pytest.mark.parametrize("text", [
        "",
        "$d/",
        "for $x in",
        "1 +",
        "(1",
        "$d[",
        "if ($x) then 1",
        "let $x = 1 return $x",
    ])
    def test_raises(self, text):
        with pytest.raises(XQuerySyntaxError):
            parse_query(text)
