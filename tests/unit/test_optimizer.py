"""The algebraic tree-pattern rules (a)–(f) and the paper's plan shapes."""

from repro.algebra import (Compare, Const, DDOPlan, FieldAccess, FnCall,
                           InputTuple, Logical, MapFromItem, MapToItem,
                           Select, TreeJoin, TupleTreePattern, VarPlan,
                           compile_core, count_operators, optimize_plan,
                           plan_canonical, plan_to_string, walk_plan)
from repro.algebra.optimizer import OptimizerOptions
from repro.pattern import parse_pattern
from repro.rewrite import rewrite_to_tpnf
from repro.xmltree.axes import Axis
from repro.xmltree.nodetest import NameTest
from repro.xqcore import fresh_var, normalize_query
from repro.xquery import parse_query
from repro.xquery.abbrev import resolve_abbreviations


def optimized(text, options=None):
    core = normalize_query(resolve_abbreviations(parse_query(text))).core
    return optimize_plan(compile_core(rewrite_to_tpnf(core)),
                         options=options)


def ttp_count(plan):
    return count_operators(plan, TupleTreePattern)


def patterns_of(plan):
    return [node.pattern.to_string() for node in walk_plan(plan)
            if isinstance(node, TupleTreePattern)]


class TestIndividualRules:
    def test_rule_a_dependent_input(self):
        plan = FnCall("fn:boolean",
                      [TreeJoin(Axis.CHILD, NameTest("b"),
                                FieldAccess("dot"))])
        result = optimize_plan(plan)
        ttps = [n for n in walk_plan(result)
                if isinstance(n, TupleTreePattern)]
        assert len(ttps) == 1
        assert ttps[0].pattern.input_field == "dot"
        assert isinstance(ttps[0].input, InputTuple)

    def test_rule_a_independent_input(self):
        var = fresh_var("d", origin="external")
        plan = TreeJoin(Axis.DESCENDANT, NameTest("a"), VarPlan(var))
        result = optimize_plan(plan)
        assert isinstance(result, MapToItem)
        ttp = result.input
        assert isinstance(ttp, TupleTreePattern)
        assert isinstance(ttp.input, MapFromItem)

    def test_rule_a_skips_reverse_axes(self):
        plan = TreeJoin(Axis.PARENT, NameTest("a"), FieldAccess("dot"))
        result = optimize_plan(plan)
        assert isinstance(result, TreeJoin)

    def test_rule_b_reuses_maptoitem(self):
        var = fresh_var("d", origin="external")
        plan = MapToItem(
            TreeJoin(Axis.CHILD, NameTest("b"), FieldAccess("dot")),
            MapFromItem("dot", VarPlan(var)))
        result = optimize_plan(plan)
        assert isinstance(result, MapToItem)
        assert isinstance(result.dep, FieldAccess)
        assert isinstance(result.input, TupleTreePattern)

    def test_rule_c_eliminates_conversions(self):
        var = fresh_var("d", origin="external")
        inner = TupleTreePattern(
            parse_pattern("IN#in/descendant::a{o}"),
            MapFromItem("in", VarPlan(var)))
        plan = MapFromItem("renamed", MapToItem(FieldAccess("o"), inner))
        # Drive through a consuming Select so the optimizer visits it.
        full = MapToItem(FieldAccess("renamed"),
                         Select(Compare("=", FieldAccess("renamed"),
                                        Const(("x",))), plan))
        result = optimize_plan(full)
        assert ttp_count(result) == 1
        pattern = patterns_of(result)[0]
        assert "{renamed}" in pattern
        # The MapFromItem/MapToItem round trip is gone.
        selects = [n for n in walk_plan(result) if isinstance(n, Select)]
        assert isinstance(selects[0].input, TupleTreePattern)

    def test_rule_c_applies_to_dependent_input(self):
        inner = TupleTreePattern(
            parse_pattern("IN#in/descendant::a{o}"), InputTuple())
        plan = MapToItem(
            FieldAccess("renamed"),
            MapFromItem("renamed", MapToItem(FieldAccess("o"), inner)))
        result = optimize_plan(plan)
        # Either rule (c) renames the output or the map-identity cleanup
        # collapses the round trip first; both leave a single pattern
        # with no residual MapFromItem.
        assert ttp_count(result) == 1
        assert not any(isinstance(n, MapFromItem) for n in walk_plan(result))

    def test_rule_d_merges_under_ddo(self):
        var = fresh_var("d", origin="external")
        inner = TupleTreePattern(parse_pattern("IN#in/descendant::a{mid}"),
                                 MapFromItem("in", VarPlan(var)))
        outer = TupleTreePattern(parse_pattern("IN#mid/child::b{out}"),
                                 inner)
        plan = DDOPlan(MapToItem(FieldAccess("out"), outer))
        result = optimize_plan(plan)
        assert ttp_count(result) == 1
        assert "descendant::a/child::b{out}" in patterns_of(result)[0]

    def test_rule_d_blocked_without_order_safety(self):
        var = fresh_var("d", origin="external")
        inner = TupleTreePattern(parse_pattern("IN#in/descendant::a{mid}"),
                                 MapFromItem("in", VarPlan(var)))
        outer = TupleTreePattern(parse_pattern("IN#mid/child::b{out}"),
                                 inner)
        plan = MapToItem(FieldAccess("out"), outer)  # no ddo above
        result = optimize_plan(plan)
        assert ttp_count(result) == 2

    def test_rule_d_allowed_for_separated_spine(self):
        var = fresh_var("d", origin="external")
        inner = TupleTreePattern(parse_pattern("IN#in/child::a{mid}"),
                                 MapFromItem("in", VarPlan(var)))
        outer = TupleTreePattern(parse_pattern("IN#mid/child::b{out}"),
                                 inner)
        plan = MapToItem(FieldAccess("out"), outer)  # no ddo above
        result = optimize_plan(plan)
        assert ttp_count(result) == 1

    def test_rule_e_folds_boolean_select(self):
        var = fresh_var("d", origin="external")
        spine = TupleTreePattern(parse_pattern("IN#in/descendant::a{dot}"),
                                 MapFromItem("in", VarPlan(var)))
        predicate = FnCall("fn:boolean", [MapToItem(
            FieldAccess("t"),
            TupleTreePattern(parse_pattern("IN#dot/child::b{t}"),
                             InputTuple()))])
        plan = MapToItem(FieldAccess("dot"), Select(predicate, spine))
        result = optimize_plan(plan)
        assert ttp_count(result) == 1
        assert "[child::b]" in patterns_of(result)[0]

    def test_rule_e_keeps_value_predicates(self):
        var = fresh_var("d", origin="external")
        spine = TupleTreePattern(parse_pattern("IN#in/descendant::a{dot}"),
                                 MapFromItem("in", VarPlan(var)))
        predicate = Compare("=", FieldAccess("dot"), Const(("x",)))
        plan = MapToItem(FieldAccess("dot"), Select(predicate, spine))
        result = optimize_plan(plan)
        assert any(isinstance(n, Select) for n in walk_plan(result))

    def test_rule_e_splits_mixed_conjunction(self):
        var = fresh_var("d", origin="external")
        spine = TupleTreePattern(parse_pattern("IN#in/descendant::a{dot}"),
                                 MapFromItem("in", VarPlan(var)))
        existential = FnCall("fn:boolean", [MapToItem(
            FieldAccess("t"),
            TupleTreePattern(parse_pattern("IN#dot/child::b{t}"),
                             InputTuple()))])
        value = Compare("=", FieldAccess("dot"), Const(("x",)))
        plan = MapToItem(FieldAccess("dot"),
                         Select(Logical("and", existential, value), spine))
        result = optimize_plan(plan)
        selects = [n for n in walk_plan(result) if isinstance(n, Select)]
        assert len(selects) == 1
        assert isinstance(selects[0].predicate, Compare)
        assert "[child::b]" in patterns_of(result)[0]

    def test_rule_f_removes_outer_ddo(self):
        var = fresh_var("d", origin="external")
        ttp = TupleTreePattern(
            parse_pattern("IN#in/descendant::a[child::b]/child::c{out}"),
            MapFromItem("in", VarPlan(var)))
        plan = DDOPlan(MapToItem(FieldAccess("out"), ttp))
        result = optimize_plan(plan)
        assert not any(isinstance(n, DDOPlan) for n in walk_plan(result))

    def test_rule_f_kept_for_many_tuple_input(self):
        var = fresh_var("d", origin="external")
        inner = TupleTreePattern(parse_pattern("IN#in/descendant::a{mid}"),
                                 MapFromItem("in", VarPlan(var)))
        residual = Select(Compare("=", FieldAccess("mid"), Const(("x",))),
                          inner)
        outer = TupleTreePattern(parse_pattern("IN#mid/child::b{out}"),
                                 residual)
        plan = DDOPlan(MapToItem(FieldAccess("out"), outer))
        result = optimize_plan(plan)
        assert any(isinstance(n, DDOPlan) for n in walk_plan(result))

    def test_options_disable_everything(self):
        plan = optimized("$d//person[emailaddress]/name",
                         options=OptimizerOptions(enable_tree_patterns=False))
        assert ttp_count(plan) == 0


class TestPaperPlans:
    def test_q1a_produces_p5(self):
        plan = optimized("$d//person[emailaddress]/name")
        assert ttp_count(plan) == 1
        (pattern,) = patterns_of(plan)
        assert "descendant::person" in pattern
        assert "[child::emailaddress]" in pattern
        assert "child::name" in pattern
        assert isinstance(plan, MapToItem)
        assert not any(isinstance(n, DDOPlan) for n in walk_plan(plan))
        assert not any(isinstance(n, TreeJoin) for n in walk_plan(plan))

    def test_q1_variants_identical_plans(self):
        plans = [plan_canonical(optimized(q)) for q in (
            "$d//person[emailaddress]/name",
            "(for $x in $d//person[emailaddress] return $x)/name",
            "let $x := (for $y in $d//person where $y/emailaddress "
            "return $y) return $x/name")]
        assert len(set(plans)) == 1

    def test_q2_two_patterns_with_select(self):
        plan = optimized('$d//person[name = "John"]/emailaddress')
        patterns = patterns_of(plan)
        # person spine, emailaddress continuation, name inside the Select
        assert len(patterns) == 3
        assert any(isinstance(n, Select) for n in walk_plan(plan))
        assert any("descendant::person" in p for p in patterns)
        assert any("child::emailaddress" in p for p in patterns)

    def test_q3_positional_fragments(self):
        plan = optimized("$d//person[1]/name")
        assert ttp_count(plan) >= 1
        assert any(isinstance(n, Select) for n in walk_plan(plan))

    def test_q5_two_patterns_through_map(self):
        plan = optimized("for $x in $d//person[emailaddress] return $x/name")
        assert ttp_count(plan) == 2
        assert not any(isinstance(n, DDOPlan) for n in walk_plan(plan))

    def test_figure4_path_single_pattern(self):
        plan = optimized(
            "$input/site/people/person[emailaddress]/profile/interest")
        assert ttp_count(plan) == 1
        (pattern,) = patterns_of(plan)
        assert pattern.count("child::") == 6  # 5 spine + 1 branch

    def test_qe1_single_pattern_with_nested_branches(self):
        plan = optimized(
            "$input/desc::t01[child::t02[child::t03[child::t04]]]")
        assert ttp_count(plan) == 1
        (pattern,) = patterns_of(plan)
        assert "[child::t02[child::t03[child::t04]]]" in pattern

    def test_qe3_branch_with_continuation(self):
        plan = optimized(
            "$input/desc::t01[child::t02[child::t03]/child::t04"
            "[child::t03]]")
        assert ttp_count(plan) == 1
        (pattern,) = patterns_of(plan)
        assert "[child::t02[child::t03]/child::t04[child::t03]]" in pattern

    def test_qe2_positional_split(self):
        plan = optimized(
            "$input/desc::t01/child::t02[1]/child::t03[child::t04]")
        assert ttp_count(plan) >= 2

    def test_attribute_predicate(self):
        plan = optimized("$d//interest[@category]")
        (pattern,) = patterns_of(plan)
        assert "[attribute::category]" in pattern

    def test_optimization_grows_patterns_monotonically(self):
        """Rules only ever merge: no plan has more TreeJoins after."""
        for query in ("$d//a/b/c", "$d//a[b]/c", "$d/a/b[c][d]/e"):
            plan = optimized(query)
            assert not any(isinstance(n, TreeJoin) for n in walk_plan(plan))

    def test_plan_to_string_contains_operator_names(self):
        plan = optimized("$d//person[emailaddress]/name")
        text = plan_to_string(plan)
        assert "TupleTreePattern" in text
        assert "MapFromItem" in text
