"""The observability layer: metrics, plan cache, traced runs."""

import math

import pytest

from repro import Engine
from repro.bench import geometric_mean, measure_strategy, render_measurements
from repro.data import member_document
from repro.obs import (DECISION_RING_SIZE, CacheStats, ExecMetrics,
                       PipelineMetrics, PlanCache, TracedRun)
from repro.pattern import parse_pattern
from repro.physical import CostBasedChooser, HeuristicChooser

QUERY = "$input//person[emailaddress]/name"


# -- PipelineMetrics -----------------------------------------------------------

class TestPipelineMetrics:
    def test_stage_records_elapsed(self):
        metrics = PipelineMetrics()
        with metrics.stage("parse"):
            pass
        assert metrics.stages["parse"] >= 0.0
        assert metrics.total_seconds == pytest.approx(
            sum(metrics.stages.values()))

    def test_repeated_stage_accumulates(self):
        metrics = PipelineMetrics()
        for _ in range(3):
            with metrics.stage("rewrite"):
                pass
        assert list(metrics.stages) == ["rewrite"]

    def test_report_mentions_every_stage(self):
        metrics = PipelineMetrics()
        with metrics.stage("parse"):
            pass
        report = metrics.report()
        assert "parse" in report and "total" in report


# -- PlanCache -----------------------------------------------------------------

class TestPlanCache:
    def test_lru_eviction_order(self):
        cache = PlanCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1     # refresh "a"
        cache.put("c", 3)              # evicts "b", the LRU entry
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_hit_miss_accounting(self):
        cache = PlanCache(max_size=4)
        assert cache.get("missing") is None
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_zero_size_disables_caching(self):
        cache = PlanCache(max_size=0)
        cache.put("k", "v")
        assert len(cache) == 0
        assert cache.get("k") is None

    def test_clear_keeps_stats(self):
        cache = PlanCache(max_size=4)
        cache.put("k", "v")
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(max_size=-1)


# -- engine integration --------------------------------------------------------

class TestEngineObservability:
    def test_second_run_is_a_cache_hit(self, people_doc):
        engine = Engine(people_doc)
        engine.run(QUERY)
        assert engine.plan_cache.stats.hits == 0
        engine.run(QUERY)
        assert engine.plan_cache.stats.hits == 1
        assert len(engine.plan_cache) == 1

    def test_cache_key_separates_optimize_flag(self, people_doc):
        engine = Engine(people_doc)
        engine.run(QUERY, optimize=True)
        engine.run(QUERY, optimize=False)
        assert engine.plan_cache.stats.hits == 0
        assert len(engine.plan_cache) == 2

    def test_traced_compile_bypasses_cache(self, people_doc):
        engine = Engine(people_doc)
        first = engine.compile(QUERY, trace=True)
        second = engine.compile(QUERY, trace=True)
        assert first is not second
        assert engine.plan_cache.stats.lookups == 0

    def test_run_traced_shape(self, people_doc):
        engine = Engine(people_doc)
        traced = engine.run_traced(QUERY)
        assert isinstance(traced, TracedRun)
        assert [n.string_value() for n in traced.results] == \
            ["John", "John", "Ada"]
        assert traced.cache_hit is False
        assert set(traced.pipeline.stages) == \
            {"parse", "normalize", "rewrite", "compile", "optimize",
             "summary", "columnar"}
        assert traced.pipeline.total_seconds > 0.0
        assert traced.metrics.pattern_evals >= 1
        assert sum(traced.metrics.nodes_visited.values()) > 0
        again = engine.run_traced(QUERY)
        assert again.cache_hit is True
        assert keyed(again.results) == keyed(traced.results)

    def test_run_traced_report_readable(self, people_doc):
        engine = Engine(people_doc)
        report = engine.run_traced(QUERY, strategy="auto").report()
        for fragment in ("strategy   : auto", "plan cache : miss",
                         "compile stages:", "execution counters:",
                         "chooser decisions"):
            assert fragment in report

    def test_explain_metrics_section(self, people_doc):
        engine = Engine(people_doc)
        compiled = engine.compile(QUERY)
        assert "Stage timings" not in compiled.explain()
        assert "Stage timings" in compiled.explain(metrics=True)

    def test_execute_without_metrics_collects_nothing(self, people_doc):
        engine = Engine(people_doc)
        compiled = engine.compile(QUERY)
        metrics = ExecMetrics()
        engine.execute(compiled)                    # plain run: no counting
        engine.execute(compiled, metrics=metrics)
        assert metrics.pattern_evals == 1
        assert metrics.counters()["visited.scjoin"] > 0


def keyed(sequence):
    return [getattr(item, "pre", item) for item in sequence]


# -- bounded chooser decisions -------------------------------------------------

class TestBoundedDecisions:
    @pytest.fixture(scope="class")
    def doc(self):
        return member_document(300, depth=4, tag_count=3, seed=3)

    @pytest.mark.parametrize("factory", [HeuristicChooser, CostBasedChooser],
                             ids=["auto", "cost"])
    def test_ring_is_bounded_but_tally_exact(self, factory, doc):
        chooser = factory(doc)
        path = parse_pattern("IN#d/descendant::t01{o}").path
        total = DECISION_RING_SIZE + 25
        for _ in range(total):
            chooser.match_single(doc, [doc.root], path)
        # The detail ring stays bounded (no unbounded growth)...
        assert len(chooser.decisions) == DECISION_RING_SIZE
        # ...while the tally still exposes the exact count.
        assert chooser.metrics.decisions_total == total

    def test_decision_records_carry_inputs(self, doc):
        chooser = HeuristicChooser(doc)
        path = parse_pattern("IN#d/descendant::t01{o}").path
        chooser.match_single(doc, [doc.root], path)
        record = chooser.metrics.decision_ring[-1]
        inputs = dict(record.inputs)
        assert record.chooser == "auto"
        assert inputs["region"] >= 1 and inputs["streams"] >= 1
        assert record.to_dict()["algorithm"] == record.algorithm

    def test_cost_decisions_carry_estimates(self, doc):
        chooser = CostBasedChooser(doc)
        path = parse_pattern("IN#d/descendant::t01{o}").path
        chooser.match_single(doc, [doc.root], path)
        inputs = dict(chooser.metrics.decision_ring[-1].inputs)
        assert {"cost_nljoin", "cost_twigjoin", "cost_scjoin",
                "cost_streaming"} <= set(inputs)


# -- harness helpers -----------------------------------------------------------

class TestHarness:
    def test_geometric_mean_basics(self):
        assert geometric_mean([4, 9]) == pytest.approx(6.0)
        assert geometric_mean([]) == 0.0

    def test_geometric_mean_no_underflow(self):
        # 400 microsecond-scale timings: the old running product
        # underflowed to 0.0 long before the series ended.
        values = [1e-6] * 400
        assert geometric_mean(values) == pytest.approx(1e-6)
        assert geometric_mean([1e300] * 10) == pytest.approx(1e300)

    def test_geometric_mean_skips_non_positive(self):
        assert geometric_mean([0.0, 4.0, 9.0]) == pytest.approx(6.0)
        assert geometric_mean([-1.0, 0.0]) == 0.0

    def test_measure_strategy_collects_counters(self, people_doc):
        engine = Engine(people_doc)
        compiled = engine.compile(QUERY)
        measurement = measure_strategy(engine, compiled, "twigjoin",
                                       repeats=1)
        assert measurement.result_count == 3
        assert measurement.seconds > 0.0
        assert sum(measurement.metrics.stream_scanned.values()) > 0

    def test_render_measurements_includes_work(self, people_doc):
        engine = Engine(people_doc)
        compiled = engine.compile(QUERY)
        rows = {"Q1": [measure_strategy(engine, compiled, strategy, 1)
                       for strategy in ("nljoin", "scjoin")]}
        table = render_measurements("work", rows)
        assert "v=" in table and "s=" in table and "nljoin" in table


# -- field-exhaustive merge / to_dict ------------------------------------------

class TestExecMetricsRoundTrip:
    """merge and to_dict are driven by ``dataclasses.fields`` — a new
    counter field is merged and serialized automatically, and these
    tests fail if either ever drops a field."""

    @staticmethod
    def populated() -> ExecMetrics:
        from repro.guard import FallbackEvent
        metrics = ExecMetrics()
        metrics.operator_evals.update({"Select": 4, "MapToItem": 2})
        metrics.items_produced = 7
        metrics.tuples_produced = 5
        metrics.pattern_evals = 3
        metrics.prune_hits = 2
        metrics.prune_misses = 1
        metrics.nodes_visited.update({"nljoin": 11})
        metrics.stream_scanned.update({"twigjoin": 13})
        metrics.stack_pushes.update({"scjoin": 17})
        metrics.record_decision("auto", "twigjoin", region=3.0)
        metrics.record_fallback(FallbackEvent(
            "scjoin", "twigjoin", "REPRO-ALGO", "boom"))
        return metrics

    def test_every_field_is_populated(self):
        """Guard the fixture itself: a field added with a default value
        must be given a non-default value above (or this suite would
        vacuously pass for it)."""
        from dataclasses import fields
        metrics = self.populated()
        blank = ExecMetrics()
        for spec in fields(metrics):
            assert (getattr(metrics, spec.name)
                    != getattr(blank, spec.name)), (
                f"populated() leaves {spec.name!r} at its default — "
                f"extend it alongside the new field")

    def test_merge_then_to_dict_round_trips(self):
        from dataclasses import fields
        source = self.populated()
        target = ExecMetrics()
        target.merge(source)
        assert target.to_dict() == source.to_dict()
        for spec in fields(source):
            assert (getattr(target, spec.name)
                    == getattr(source, spec.name)), (
                f"merge dropped field {spec.name!r}")

    def test_merge_accumulates(self):
        target = self.populated()
        target.merge(self.populated())
        single = self.populated()
        assert target.items_produced == 2 * single.items_produced
        assert target.operator_evals["Select"] == \
            2 * single.operator_evals["Select"]
        assert len(target.fallbacks) == 2
        assert target.decisions_total == 2 * single.decisions_total

    def test_to_dict_keeps_decisions_key(self):
        payload = self.populated().to_dict()
        assert "decisions" in payload
        assert "decision_ring" not in payload
        assert payload["decisions"][0]["algorithm"] == "twigjoin"

    def test_merge_rejects_unmergeable_field_types(self):
        """The fields-driven merge must fail loudly, not silently skip,
        when a field of an unknown type appears."""
        from dataclasses import dataclass, field as dfield

        @dataclass
        class Widened(ExecMetrics):
            strange: dict = dfield(default_factory=dict)

        with pytest.raises(TypeError):
            Widened().merge(Widened())
