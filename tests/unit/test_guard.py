"""Unit tests for the guardrails package (errors, governor, chaos)."""

import pytest

from repro.guard import (AlgorithmError, BudgetExceeded, Budgets, ChaosSpec,
                         FallbackEvent, InjectedFault, InputError,
                         KNOWN_SITES, ReproError, ResourceGovernor,
                         SourceSpan, active_injector, chaos_point, inject)


class TestSourceSpan:
    def test_from_offset_first_line(self):
        span = SourceSpan.from_offset("abc def", 4)
        assert (span.line, span.column) == (1, 5)
        assert span.source_line == "abc def"

    def test_from_offset_later_line(self):
        span = SourceSpan.from_offset("ab\ncd\nef", 6)
        assert (span.line, span.column) == (3, 1)
        assert span.source_line == "ef"

    def test_offset_clamped(self):
        span = SourceSpan.from_offset("ab", 99)
        assert span.offset == 2
        assert span.column == 3

    def test_caret_snippet_points_at_column(self):
        span = SourceSpan.from_offset("abcdef", 3)
        snippet, caret = span.caret_snippet().splitlines()
        assert snippet == "    abcdef"
        assert caret.index("^") == 4 + 3

    def test_caret_snippet_windows_long_lines(self):
        text = "x" * 300 + "!" + "y" * 300
        span = SourceSpan.from_offset(text, 300)
        snippet, caret = span.caret_snippet().splitlines()
        assert len(snippet) <= 80
        assert snippet[caret.index("^")] == "!"


class TestReproError:
    def test_code_and_context(self):
        err = ReproError("boom", code="REPRO-X", detail=7)
        assert err.code == "REPRO-X"
        assert err.context == {"detail": 7}
        assert err.to_dict() == {"code": "REPRO-X", "message": "boom",
                                 "detail": 7}

    def test_is_value_error(self):
        with pytest.raises(ValueError):
            raise ReproError("compat")

    def test_str_without_span(self):
        assert str(ReproError("plain")) == "[REPRO-0000] plain"

    def test_str_with_span_has_caret(self):
        err = ReproError("bad").attach_source("ab\ncde", offset=4)
        text = str(err)
        assert "(line 2, column 2)" in text
        assert text.splitlines()[-1].strip() == "^"

    def test_attach_source_keeps_existing_span(self):
        err = ReproError("bad").attach_source("abc", offset=1)
        first = err.span
        err.attach_source("other text", offset=5)
        assert err.span is first

    def test_algorithm_error_carries_algorithm(self):
        err = AlgorithmError("failed", algorithm="twigjoin")
        assert err.algorithm == "twigjoin"
        assert err.to_dict()["algorithm"] == "twigjoin"

    def test_fallback_event_rendering(self):
        event = FallbackEvent("twigjoin", "nljoin", "REPRO-ALGO", "boom")
        assert "twigjoin -> nljoin" in str(event)
        assert event.to_dict()["from"] == "twigjoin"


class TestGovernor:
    def test_disabled_budgets(self):
        budgets = Budgets()
        assert not budgets.enabled()
        governor = ResourceGovernor(budgets)
        for _ in range(10):
            governor.tick(1000)
            governor.note_output(10**9)
        governor.check_clock()

    def test_step_budget_trips(self):
        governor = ResourceGovernor(Budgets(max_steps=10))
        with pytest.raises(BudgetExceeded) as exc:
            for _ in range(11):
                governor.tick()
        assert exc.value.kind == "steps"
        assert exc.value.code == "REPRO-BUDGET-STEPS"
        assert exc.value.steps == 11

    def test_batched_tick(self):
        governor = ResourceGovernor(Budgets(max_steps=10))
        with pytest.raises(BudgetExceeded):
            governor.tick(11)

    def test_wall_budget_trips_via_tick(self):
        clock_values = iter([0.0] + [10.0] * 1000)
        governor = ResourceGovernor(Budgets(wall_seconds=1.0),
                                    clock=lambda: next(clock_values))
        with pytest.raises(BudgetExceeded) as exc:
            for _ in range(1000):
                governor.tick()
        assert exc.value.kind == "wall"

    def test_output_budget_trips(self):
        governor = ResourceGovernor(Budgets(max_output=5))
        governor.note_output(5)
        with pytest.raises(BudgetExceeded) as exc:
            governor.note_output(6)
        assert exc.value.kind == "output"

    def test_depth_budget_trips(self):
        governor = ResourceGovernor(Budgets(max_depth=3))
        for _ in range(3):
            governor.enter()
        with pytest.raises(BudgetExceeded) as exc:
            governor.enter()
        assert exc.value.kind == "depth"
        governor.leave()

    def test_shared_deadline_overrides_budget(self):
        clock_values = iter([5.0] + [6.0] * 10)
        governor = ResourceGovernor(Budgets(wall_seconds=100.0),
                                    deadline=5.5,
                                    clock=lambda: next(clock_values))
        with pytest.raises(BudgetExceeded) as exc:
            governor.check_clock()
        assert exc.value.kind == "wall"

    def test_budget_exceeded_is_structured(self):
        err = BudgetExceeded("steps", 10, 11, elapsed_seconds=0.5, steps=11)
        data = err.to_dict()
        assert data["kind"] == "steps"
        assert data["limit"] == 10
        assert data["steps"] == 11
        assert isinstance(err, ReproError)


class TestChaos:
    def test_inactive_point_is_identity(self):
        assert active_injector() is None
        payload = [1, 2, 3]
        assert chaos_point("nljoin.match", payload) is payload

    def test_unknown_exact_site_rejected(self):
        with pytest.raises(InputError):
            ChaosSpec(site="nljoin.matches")

    def test_wildcard_site_allowed(self):
        ChaosSpec(site="*.match")

    def test_unknown_action_rejected(self):
        with pytest.raises(InputError):
            ChaosSpec(site="nljoin.match", action="explode")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(InputError):
            ChaosSpec(site="nljoin.match", rate=1.5)

    def test_raise_action(self):
        with inject(ChaosSpec(site="nljoin.match")) as injector:
            with pytest.raises(InjectedFault) as exc:
                chaos_point("nljoin.match", [])
        assert exc.value.site == "nljoin.match"
        assert injector.log == [("nljoin.match", "raise")]

    def test_non_matching_site_passes_through(self):
        with inject(ChaosSpec(site="nljoin.match")) as injector:
            assert chaos_point("scjoin.match", [7]) == [7]
        assert injector.fired() == 0
        assert injector.visits == ["scjoin.match"]

    def test_corrupt_drops_one_element(self):
        with inject(ChaosSpec(site="twigjoin.match", action="corrupt")):
            out = chaos_point("twigjoin.match", [1, 2, 3])
        assert len(out) == 2
        assert set(out) < {1, 2, 3}

    def test_corrupt_leaves_non_lists(self):
        with inject(ChaosSpec(site="twigjoin.match", action="corrupt")):
            assert chaos_point("twigjoin.match", "scalar") == "scalar"

    def test_seeded_rate_is_deterministic(self):
        def run(seed):
            with inject(ChaosSpec(site="*.match", action="corrupt",
                                  rate=0.5), seed=seed) as injector:
                for _ in range(50):
                    chaos_point("nljoin.match", [1])
            return list(injector.log)

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_nested_injectors_restore(self):
        with inject(ChaosSpec(site="nljoin.match")) as outer:
            with inject(ChaosSpec(site="scjoin.match")) as inner:
                assert active_injector() is inner
            assert active_injector() is outer
        assert active_injector() is None

    def test_env_var_supplies_default_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_SEED", "41")
        with inject(ChaosSpec(site="*.match", rate=0.5)) as injector:
            assert injector.seed == 41
        with inject(ChaosSpec(site="*.match", rate=0.5), seed=7) as injector:
            assert injector.seed == 7
        monkeypatch.setenv("REPRO_CHAOS_SEED", "not-a-number")
        with inject(ChaosSpec(site="*.match")) as injector:
            assert injector.seed == 0

    def test_every_known_site_has_algorithm_prefix(self):
        prefixes = {site.split(".")[0] for site in KNOWN_SITES}
        assert prefixes == {"eval", "nljoin", "twigjoin", "scjoin",
                            "stacktree", "streaming", "auto", "cost",
                            "serve", "catalog", "columnar", "cluster"}
