"""The resilience layer: retry policy, circuit breaker, health, degraded
mode (docs/ROBUSTNESS.md)."""

from __future__ import annotations

import pytest

from repro import Engine
from repro.guard import (AlgorithmError, BudgetExceeded, CircuitOpen,
                         DocumentQuarantined, InjectedFault, InputError,
                         InternalError)
from repro.serve import BreakerPolicy, CircuitBreaker, HealthTracker, \
    RetryPolicy
from repro.serve.resilience import (CLOSED, FATAL, HALF_OPEN,
                                    NEXT_STRATEGY, OPEN, RETRY,
                                    provably_empty)
from repro.xmltree.columnar import StorageError

SITE_XML = ("<site><people>"
            "<person><name>John</name></person>"
            "<person><name>Mary</name></person>"
            "</people></site>")


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FixedRandom:
    """rng whose random() always returns a fixed value."""

    def __init__(self, value: float) -> None:
        self.value = value

    def random(self) -> float:
        return self.value


# -- RetryPolicy ---------------------------------------------------------------

class TestRetryPolicy:
    def test_classification(self):
        policy = RetryPolicy()
        assert policy.classify(InjectedFault("boom")) == RETRY
        assert policy.classify(StorageError("bad", check="mmap")) == RETRY
        assert policy.classify(InternalError("bug")) == RETRY
        assert policy.classify(AlgorithmError("algo died")) \
            == NEXT_STRATEGY
        assert policy.classify(BudgetExceeded("steps", 10, 11)) \
            == NEXT_STRATEGY
        assert policy.classify(BudgetExceeded("wall", 1.0, 2.0)) == FATAL
        assert policy.classify(DocumentQuarantined("q")) == FATAL
        assert policy.classify(InputError("typo")) == FATAL
        assert policy.classify(ValueError("bare")) == FATAL

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.010, max_delay=0.030,
                             multiplier=2.0, jitter=0.0)
        rng = FixedRandom(0.0)
        assert policy.delay(1, rng) == pytest.approx(0.010)
        assert policy.delay(2, rng) == pytest.approx(0.020)
        assert policy.delay(3, rng) == pytest.approx(0.030)  # capped
        assert policy.delay(9, rng) == pytest.approx(0.030)

    def test_jitter_stretches_up_to_fraction(self):
        policy = RetryPolicy(base_delay=0.010, jitter=0.5)
        assert policy.delay(1, FixedRandom(0.0)) == pytest.approx(0.010)
        assert policy.delay(1, FixedRandom(1.0)) == pytest.approx(0.015)

    def test_attempt_strategies_deduplicate_requested(self):
        policy = RetryPolicy(strategy_chain=("nljoin", "item"))
        assert policy.attempt_strategies(None) \
            == [None, "nljoin", "item"]
        assert policy.attempt_strategies("twigjoin") \
            == ["twigjoin", "nljoin", "item"]
        assert policy.attempt_strategies("nljoin") == ["nljoin", "item"]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


# -- CircuitBreaker ------------------------------------------------------------

def make_breaker(clock, **overrides) -> CircuitBreaker:
    defaults = dict(window=8, min_samples=4, failure_threshold=0.5,
                    reset_seconds=10.0)
    defaults.update(overrides)
    return CircuitBreaker(BreakerPolicy(**defaults), clock=clock)


class TestCircuitBreaker:
    def test_stays_closed_below_min_samples(self):
        breaker = make_breaker(FakeClock())
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_at_failure_threshold(self):
        # 2 failures / 4 samples hits the 0.5 threshold exactly on the
        # fourth outcome.
        breaker = make_breaker(FakeClock())
        for _ in range(2):
            breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # below min_samples
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_successes_keep_it_closed(self):
        breaker = make_breaker(FakeClock())
        for _ in range(6):
            breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # 2/8 < 0.5

    def test_open_cooldown_then_half_open(self):
        clock = FakeClock()
        breaker = make_breaker(clock, reset_seconds=10.0)
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.retry_after() == pytest.approx(10.0)
        clock.advance(6.0)
        assert breaker.retry_after() == pytest.approx(4.0)
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()

    def test_half_open_success_closes(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(11.0)
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED
        # The window was cleared: old failures don't count anymore.
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(11.0)
        assert breaker.state == HALF_OPEN
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.retry_after() == pytest.approx(10.0)


# -- HealthTracker -------------------------------------------------------------

class TestHealthTracker:
    def test_statuses(self):
        clock = FakeClock()
        tracker = HealthTracker(
            breaker_policy=BreakerPolicy(window=4, min_samples=4,
                                         reset_seconds=10.0),
            clock=clock)
        tracker.record_success("site")
        health = tracker.document_health("site")
        assert health.status == "healthy"
        assert health.breaker_state == CLOSED

        tracker.record_failure("site", InjectedFault("boom"))
        health = tracker.document_health("site")
        assert health.status == "degraded"
        assert health.consecutive_failures == 1
        assert health.last_error == "REPRO-CHAOS"

        for _ in range(3):
            tracker.record_failure("site", InjectedFault("boom"))
        health = tracker.document_health("site")
        assert health.breaker_state == OPEN
        assert health.status == "unhealthy"
        assert tracker.document_health(
            "site", degraded_capable=True).status == "degraded"

    def test_snapshot_takes_worst_status(self):
        tracker = HealthTracker()
        tracker.record_success("good")
        tracker.record_failure("bad", InternalError("x"))
        snapshot = tracker.snapshot()
        assert snapshot.status == "degraded"
        assert [doc.document for doc in snapshot.documents] \
            == ["bad", "good"]
        assert "degraded" in snapshot.report()

    def test_quarantine_degrades_healthy_service(self):
        tracker = HealthTracker()
        tracker.record_success("site")
        snapshot = tracker.snapshot(quarantined=("member",))
        assert snapshot.status == "degraded"
        assert snapshot.quarantined == ("member",)

    def test_probe_feeds_breaker(self):
        clock = FakeClock()
        tracker = HealthTracker(
            breaker_policy=BreakerPolicy(window=4, min_samples=4,
                                         reset_seconds=10.0),
            clock=clock)
        for _ in range(4):
            tracker.record_failure("site", InjectedFault("boom"))
        assert tracker.breaker("site").state == OPEN
        clock.advance(11.0)
        engine = Engine.from_xml(SITE_XML)
        assert tracker.probe("site", lambda: engine)
        assert tracker.breaker("site").state == CLOSED
        health = tracker.document_health("site")
        assert health.probes == 1
        assert health.last_probe_ok is True

    def test_probe_failure_recorded(self):
        tracker = HealthTracker()

        def broken():
            raise StorageError("gone", check="open")

        assert not tracker.probe("site", broken)
        health = tracker.document_health("site")
        assert health.last_probe_ok is False
        assert health.last_error == "REPRO-STORAGE"

    def test_without_breaker_policy(self):
        tracker = HealthTracker()
        tracker.record_success("site")
        assert tracker.breaker("site") is None
        assert tracker.document_health("site").breaker_state is None


# -- provably_empty ------------------------------------------------------------

class TestProvablyEmpty:
    def engine(self, **options) -> Engine:
        return Engine.from_xml(SITE_XML, **options)

    def prove(self, engine: Engine, query: str) -> bool:
        return provably_empty(engine.compile(query, optimize=True),
                              engine)

    def test_absent_tag_is_provably_empty(self):
        engine = self.engine()
        assert self.prove(engine, "$input//nosuchtag")
        # And the claim is true: the engine agrees.
        assert engine.run("$input//nosuchtag") == []

    def test_matching_query_is_not_empty(self):
        assert not self.prove(self.engine(), "$input//person/name")

    def test_absent_path_with_predicate(self):
        engine = self.engine()
        query = "$input//nosuchtag[name]"
        assert self.prove(engine, query)
        assert engine.run(query) == []

    def test_constant_results_never_qualify(self):
        # `1 + 1` is non-empty regardless of the document; the analyzer
        # must refuse anything that is not summary-grounded.
        assert not self.prove(self.engine(), "1 + 1")

    def test_requires_summary(self):
        engine = self.engine(use_summary=False)
        assert not self.prove(engine, "$input//nosuchtag")


# -- new error types -----------------------------------------------------------

class TestResilienceErrors:
    def test_circuit_open_payload(self):
        err = CircuitOpen("circuit open", document="site",
                          retry_after_seconds=2.5)
        assert err.code == "REPRO-CIRCUIT-OPEN"
        assert err.document == "site"
        assert err.retry_after_seconds == 2.5
        assert err.to_dict()["retry_after_seconds"] == 2.5

    def test_document_quarantined_payload(self):
        err = DocumentQuarantined("quarantined", document="m",
                                  path="/tmp/m.rpxc")
        assert err.code == "REPRO-STORAGE-QUARANTINED"
        assert err.document == "m"
        assert err.path == "/tmp/m.rpxc"

    def test_internal_error_is_typed(self):
        err = InternalError("wrapped")
        assert err.code == "REPRO-INTERNAL"
        assert isinstance(err, ValueError)
