"""Remaining branches of the document-order rewriting traversal."""

from repro.rewrite import remove_redundant_ddo
from repro.xmltree.axes import Axis
from repro.xmltree.nodetest import NameTest
from repro.xqcore import (CaseClause, CCall, CDDO, CEmpty, CFor, CGenCmp,
                          CIf, CArith, CLet, CLit, CLogical, CSeq, CStep,
                          CTypeswitch, CVar, fresh_var, walk)


def ext(name="d"):
    return fresh_var(name, origin="external")


def user(name="u"):
    return fresh_var(name)


def ddo_count(expr):
    return sum(1 for node in walk(expr) if isinstance(node, CDDO))


def wrap_ddo(var):
    return CDDO(CVar(var))


class TestSpinePropagation:
    def test_sequence_items_inherit_insensitivity(self):
        u1, u2 = user("a"), user("b")
        expr = CDDO(CSeq([wrap_ddo(u1), wrap_ddo(u2)]))
        result = remove_redundant_ddo(expr)
        assert ddo_count(result) == 1  # only the outer survives

    def test_step_input_inherits(self):
        u = user()
        expr = CDDO(CStep(Axis.CHILD, NameTest("a"), wrap_ddo(u)))
        result = remove_redundant_ddo(expr)
        assert ddo_count(result) == 1

    def test_if_branches_inherit(self):
        u = user()
        expr = CDDO(CIf(CLit(True), wrap_ddo(u), wrap_ddo(u)))
        result = remove_redundant_ddo(expr)
        assert ddo_count(result) == 1

    def test_if_condition_is_ebv_consumer(self):
        u = user()
        expr = CIf(wrap_ddo(u), CLit(1), CLit(2))
        result = remove_redundant_ddo(expr)
        assert ddo_count(result) == 0

    def test_let_value_stays_sensitive(self):
        u, x = user(), fresh_var("x")
        expr = CDDO(CLet(x, wrap_ddo(u),
                         CCall("fn:count", [CVar(x)])))
        result = remove_redundant_ddo(expr)
        # fn:count is dup-sensitive, so the *value's* ddo must survive
        # (the outer one goes: the body is a provable singleton).
        inner = result if not isinstance(result, CDDO) else result.arg
        assert isinstance(inner.value, CDDO)

    def test_let_body_inherits(self):
        u, x = user(), fresh_var("x")
        expr = CDDO(CLet(x, CLit(1), wrap_ddo(u)))
        result = remove_redundant_ddo(expr)
        assert ddo_count(result) == 1

    def test_logical_operands_are_ebv(self):
        u1, u2 = user("a"), user("b")
        expr = CLogical("and", wrap_ddo(u1), wrap_ddo(u2))
        result = remove_redundant_ddo(expr)
        assert ddo_count(result) == 0

    def test_arithmetic_operands_sensitive(self):
        u = user()
        expr = CArith("+", wrap_ddo(u), CLit(1))
        result = remove_redundant_ddo(expr)
        # atomic singletons can't come from ddo soundly → kept
        assert ddo_count(result) == 1

    def test_typeswitch_branches_inherit(self):
        u = user()
        case_var, default_var = fresh_var("v"), fresh_var("w")
        expr = CDDO(CTypeswitch(
            CLit(1),
            [CaseClause("numeric", case_var, wrap_ddo(u))],
            default_var, wrap_ddo(u)))
        result = remove_redundant_ddo(expr)
        assert ddo_count(result) == 1

    def test_typeswitch_input_sensitive(self):
        u = user()
        case_var, default_var = fresh_var("v"), fresh_var("w")
        expr = CTypeswitch(
            wrap_ddo(u),
            [CaseClause("numeric", case_var, CLit(1))],
            default_var, CLit(2))
        result = remove_redundant_ddo(expr)
        assert ddo_count(result) == 1

    def test_nonboolean_call_args_sensitive(self):
        u = user()
        expr = CCall("fn:reverse", [wrap_ddo(u)])
        result = remove_redundant_ddo(expr)
        assert ddo_count(result) == 1

    def test_exists_and_empty_are_ebv(self):
        u = user()
        for name in ("fn:exists", "fn:empty", "fn:not"):
            expr = CCall(name, [wrap_ddo(u)])
            assert ddo_count(remove_redundant_ddo(expr)) == 0, name

    def test_unchanged_tree_shares_identity(self):
        u = user()
        expr = CCall("fn:count", [wrap_ddo(u)])
        assert remove_redundant_ddo(expr) is expr

    def test_where_of_loop_is_ebv(self):
        u, x = user(), fresh_var("x")
        loop = CFor(x, None, CVar(ext()), wrap_ddo(u), CVar(x))
        result = remove_redundant_ddo(loop)
        assert ddo_count(result) == 0

    def test_comparison_operands_insensitive(self):
        u = user()
        expr = CGenCmp("=", wrap_ddo(u), CLit("x"))
        assert ddo_count(remove_redundant_ddo(expr)) == 0

    def test_empty_sequence_facts(self):
        expr = CDDO(CEmpty())
        assert ddo_count(remove_redundant_ddo(expr)) == 0
