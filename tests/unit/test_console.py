"""The ``repro top`` console model (``repro.serve.console``):
exposition parsing, the PromQL quantile estimator, and the
delta-rate/table rendering over synthetic consecutive scrapes.
"""

import pytest

from repro.serve.console import (ConsoleState, histogram_quantile,
                                 parse_prometheus)


class TestParse:
    def test_samples_and_labels(self):
        text = "\n".join([
            "# HELP repro_x_total Things.",
            "# TYPE repro_x_total counter",
            "repro_x_total 41",
            'repro_y_total{worker="3",mode="scattered"} 7.5',
            "repro_inf_bucket{le=\"+Inf\"} 12",
        ]) + "\n"
        samples = parse_prometheus(text)
        assert [s.name for s in samples] \
            == ["repro_x_total", "repro_y_total", "repro_inf_bucket"]
        assert samples[0].labels == ()
        assert samples[0].value == 41.0
        assert samples[1].label("worker") == "3"
        assert samples[1].label("mode") == "scattered"
        assert samples[2].value == float("inf") or samples[2].value == 12
        assert samples[2].label("le") == "+Inf"

    def test_escaped_label_values_round_trip(self):
        text = ('repro_q_total{query="a\\\\b\\"c\\nd"} 1\n')
        (sample,) = parse_prometheus(text)
        assert sample.label("query") == 'a\\b"c\nd'


class TestHistogramQuantile:
    BUCKETS = [(0.001, 10.0), (0.01, 60.0), (0.1, 100.0),
               (float("inf"), 100.0)]

    def test_interpolates_within_bucket(self):
        # rank 50 falls in (0.001, 0.01]: 10 below, 60 at the bound.
        p50 = histogram_quantile(0.5, self.BUCKETS)
        assert p50 == pytest.approx(0.001 + (0.01 - 0.001) * 40 / 50)

    def test_inf_bucket_clamps_to_last_finite_bound(self):
        assert histogram_quantile(1.0, self.BUCKETS) == 0.1

    def test_empty_and_zero(self):
        assert histogram_quantile(0.5, []) == 0.0
        assert histogram_quantile(0.5, [(1.0, 0.0)]) == 0.0


def scrape_text(completed, shed, buckets):
    lines = [
        "# HELP repro_requests_completed_total Requests completed.",
        "# TYPE repro_requests_completed_total counter",
        f"repro_requests_completed_total {completed}",
        "# HELP repro_requests_shed_total Requests shed.",
        "# TYPE repro_requests_shed_total counter",
        f"repro_requests_shed_total {shed}",
        "# HELP repro_request_latency_seconds Latency.",
        "# TYPE repro_request_latency_seconds histogram",
    ]
    cumulative = 0
    for bound, count in buckets:
        cumulative += count
        bound_text = "+Inf" if bound == float("inf") else repr(bound)
        lines.append("repro_request_latency_seconds_bucket"
                     f'{{le="{bound_text}"}} {cumulative}')
    lines.append(f"repro_request_latency_seconds_sum 1.0")
    lines.append(f"repro_request_latency_seconds_count {cumulative}")
    return "\n".join(lines) + "\n"


HEALTH = {"status": "healthy", "queue_depth": 2, "in_flight": 1,
          "workers": [
              {"index": 0, "alive": True, "breaker_state": "closed",
               "queue_depth": 1, "completed": 9, "busy_seconds": 0.25},
              {"index": 1, "alive": False, "breaker_state": "open",
               "queue_depth": 0, "completed": 4, "busy_seconds": 0.10},
          ],
          "documents": {"documents": [
              {"document": "xmark", "status": "healthy",
               "breaker_state": "closed", "successes": 13,
               "failures": 0},
          ]}}


class TestConsoleState:
    def test_qps_is_delta_between_scrapes(self):
        state = ConsoleState()
        first = scrape_text(100, 0, [(0.01, 50), (float("inf"), 0)])
        second = scrape_text(130, 6, [(0.01, 80), (float("inf"), 0)])
        state.update(first, HEALTH, now=10.0)
        table = state.update(second, HEALTH, now=13.0)
        assert "qps=   10.0" in table          # (130-100)/3s
        assert "shed/s=2.0" in table           # (6-0)/3s
        assert "scrape #2" in table

    def test_first_scrape_renders_without_rates(self):
        state = ConsoleState()
        table = state.update(
            scrape_text(10, 0, [(0.01, 10), (float("inf"), 0)]),
            HEALTH, now=5.0)
        assert "scrape #1" in table
        assert "qps=    0.0" in table
        # Quantiles fall back to the cumulative distribution.
        assert "p50=" in table

    def test_worker_and_document_rows(self):
        state = ConsoleState()
        table = state.update(
            scrape_text(1, 0, [(float("inf"), 1)]), HEALTH, now=0.0)
        assert "worker   0 alive" in table
        assert "worker   1 DEAD" in table
        assert "breaker=open" in table
        assert "doc xmark" in table
        assert "status=healthy" in table

    def test_shard_table_appears_with_cluster_series(self):
        text = scrape_text(5, 0, [(float("inf"), 5)]) + "\n".join([
            "# HELP repro_cluster_shard_latency_seconds Shard seconds.",
            "# TYPE repro_cluster_shard_latency_seconds histogram",
            'repro_cluster_shard_latency_seconds_bucket'
            '{document="xmark",shard="0",le="0.01"} 4',
            'repro_cluster_shard_latency_seconds_bucket'
            '{document="xmark",shard="0",le="+Inf"} 5',
            'repro_cluster_shard_latency_seconds_sum'
            '{document="xmark",shard="0"} 0.05',
            'repro_cluster_shard_latency_seconds_count'
            '{document="xmark",shard="0"} 5',
        ]) + "\n"
        state = ConsoleState()
        table = state.update(text, HEALTH, now=1.0)
        assert "document" in table and "shard" in table
        assert "xmark" in table
