"""Engine-level guardrails: input validation, budgets, strategy fallback."""

import pytest

from repro import Engine
from repro.engine import DEFAULT_FALLBACK_CHAIN, ITEM_EVALUATOR
from repro.guard import (BudgetExceeded, Budgets, ChaosSpec, InjectedFault,
                         InputError, inject)
from repro.obs import ExecMetrics
from repro.physical import Strategy

QUERY = "$input//person[emailaddress]/name"

ALL_STRATEGIES = ["nljoin", "twigjoin", "scjoin", "stacktree", "streaming",
                  "auto", "cost"]


def people_values(results):
    return [node.string_value() for node in results]


class TestInputValidation:
    def test_empty_query_rejected(self, people_engine):
        with pytest.raises(InputError) as exc:
            people_engine.run("")
        assert exc.value.code == "REPRO-INPUT"

    def test_whitespace_query_rejected(self, people_engine):
        with pytest.raises(InputError):
            people_engine.run("   \n\t")

    def test_non_string_query_rejected(self, people_engine):
        with pytest.raises(InputError):
            people_engine.run(None)

    def test_unknown_strategy_name(self, people_engine):
        with pytest.raises(InputError) as exc:
            people_engine.run(QUERY, strategy="quantum")
        assert "quantum" in str(exc.value)
        assert "nljoin" in str(exc.value)  # lists the valid names

    def test_wrong_typed_strategy(self, people_engine):
        with pytest.raises(InputError):
            people_engine.run(QUERY, strategy=42)

    def test_strategy_enum_accepted(self, people_engine):
        assert people_engine.run(QUERY, strategy=Strategy.TWIG_JOIN)

    def test_oversized_document_soft_limit(self):
        with pytest.raises(InputError) as exc:
            Engine.from_xml("<a/>" * 1000, max_document_size=100)
        assert exc.value.context["limit"] == 100

    def test_oversized_limit_can_be_disabled(self):
        engine = Engine.from_xml("<a>" + "<b/>" * 50 + "</a>",
                                 max_document_size=None)
        assert engine.document.size > 0

    def test_non_string_document_rejected(self):
        with pytest.raises(InputError):
            Engine.from_xml(b"<a/>")

    def test_bad_fallback_chain_rejected(self, people_doc):
        with pytest.raises(InputError):
            Engine(people_doc, fallback_chain=["nljoin", "quantum"])


class TestBudgets:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_step_budget_trips_every_strategy(self, people_engine, strategy):
        compiled = people_engine.compile(QUERY)
        with pytest.raises(BudgetExceeded) as exc:
            people_engine.execute(compiled, strategy=strategy,
                                  budgets=Budgets(max_steps=5))
        err = exc.value
        assert err.code == "REPRO-BUDGET-STEPS"
        assert err.steps > 5
        assert err.elapsed_seconds >= 0.0

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_wall_budget_trips_every_strategy(self, people_engine, strategy):
        compiled = people_engine.compile(QUERY)
        with pytest.raises(BudgetExceeded) as exc:
            people_engine.execute(compiled, strategy=strategy,
                                  budgets=Budgets(wall_seconds=0.0))
        assert exc.value.code == "REPRO-BUDGET-WALL"

    def test_output_budget_trips(self, people_engine):
        with pytest.raises(BudgetExceeded) as exc:
            people_engine.execute(people_engine.compile("$input//*"),
                                  budgets=Budgets(max_output=2))
        assert exc.value.kind == "output"

    def test_generous_budget_passes(self, people_engine):
        compiled = people_engine.compile(QUERY)
        plain = people_engine.execute(compiled)
        governed = people_engine.execute(
            compiled, budgets=Budgets(wall_seconds=60.0, max_steps=10**9,
                                      max_output=10**9, max_depth=10**6))
        assert governed == plain

    def test_engine_level_budgets(self, people_doc):
        engine = Engine(people_doc, budgets=Budgets(max_steps=5))
        with pytest.raises(BudgetExceeded):
            engine.run(QUERY)

    def test_call_overrides_engine_budgets(self, people_doc):
        engine = Engine(people_doc, budgets=Budgets(max_steps=5))
        assert engine.execute(engine.compile(QUERY),
                              budgets=Budgets(max_steps=10**9))


class TestFallback:
    def test_default_chain(self, people_engine):
        assert people_engine.fallback_chain == DEFAULT_FALLBACK_CHAIN

    def test_fault_falls_back_to_identical_results(self, people_engine):
        compiled = people_engine.compile(QUERY)
        baseline = people_engine.execute(compiled, strategy="nljoin")
        metrics = ExecMetrics()
        with inject(ChaosSpec(site="twigjoin.match")):
            recovered = people_engine.execute(compiled, strategy="twigjoin",
                                              metrics=metrics)
        assert people_values(recovered) == people_values(baseline)
        assert len(metrics.fallbacks) == 1
        event = metrics.fallbacks[0]
        assert event.from_strategy == "twigjoin"
        assert event.to_strategy == "nljoin"
        assert event.error_code == "REPRO-ALGO"

    def test_chain_skips_failing_strategies(self, people_engine):
        compiled = people_engine.compile(QUERY)
        baseline = people_engine.execute(compiled, strategy="nljoin")
        metrics = ExecMetrics()
        with inject(ChaosSpec(site="twigjoin.match"),
                    ChaosSpec(site="nljoin.match")):
            recovered = people_engine.execute(compiled, strategy="twigjoin",
                                              metrics=metrics)
        # twigjoin fails, nljoin fails, the item evaluator answers.
        assert people_values(recovered) == people_values(baseline)
        assert [e.to_strategy for e in metrics.fallbacks] \
            == ["nljoin", ITEM_EVALUATOR]

    def test_exhausted_chain_raises_last_error(self, people_doc):
        engine = Engine(people_doc, fallback_chain=["nljoin"])
        compiled = engine.compile(QUERY)
        with inject(ChaosSpec(site="*.match")):
            with pytest.raises(Exception) as exc:
                engine.execute(compiled, strategy="twigjoin")
        assert exc.value.code == "REPRO-ALGO"

    def test_strict_surfaces_original_fault(self, people_engine):
        compiled = people_engine.compile(QUERY)
        with inject(ChaosSpec(site="twigjoin.match")):
            with pytest.raises(InjectedFault):
                people_engine.execute(compiled, strategy="twigjoin",
                                      strict=True)

    def test_strict_engine_configuration(self, people_doc):
        engine = Engine(people_doc, strict=True)
        with inject(ChaosSpec(site="scjoin.match")):
            with pytest.raises(InjectedFault):
                engine.run(QUERY, strategy="scjoin")

    def test_disabled_chain(self, people_doc):
        engine = Engine(people_doc, fallback_chain=None)
        compiled = engine.compile(QUERY)
        with inject(ChaosSpec(site="twigjoin.match")):
            with pytest.raises(Exception) as exc:
                engine.execute(compiled, strategy="twigjoin")
        assert exc.value.code == "REPRO-ALGO"

    def test_comma_separated_chain(self, people_doc):
        engine = Engine(people_doc, fallback_chain="scjoin, item")
        assert engine.fallback_chain == ("scjoin", ITEM_EVALUATOR)

    def test_wall_trip_never_retries(self, people_engine):
        compiled = people_engine.compile(QUERY)
        metrics = ExecMetrics()
        with pytest.raises(BudgetExceeded) as exc:
            people_engine.execute(compiled, strategy="twigjoin",
                                  budgets=Budgets(wall_seconds=0.0),
                                  metrics=metrics)
        assert exc.value.kind == "wall"
        assert metrics.fallbacks == []

    def test_codegen_failure_steps_to_interpreted(self, people_doc,
                                                  monkeypatch):
        """The compiled backend's fallback chain starts before the
        strategy chain: codegen failure steps compiled→interpreted and
        records it, without consuming a strategy retry."""
        from repro.compiled import CodegenError
        monkeypatch.setattr(
            "repro.engine.compile_plan",
            lambda plan: (_ for _ in ()).throw(CodegenError("forced")))
        baseline = Engine(people_doc).run(QUERY)
        engine = Engine(people_doc, backend="compiled")
        metrics = ExecMetrics()
        results = engine.execute(engine.compile(QUERY), metrics=metrics)
        assert people_values(results) == people_values(baseline)
        assert len(metrics.fallbacks) == 1
        event = metrics.fallbacks[0]
        assert event.from_strategy == "compiled"
        assert event.error_code == "REPRO-CODEGEN"

    def test_codegen_failure_falls_back_even_under_strict(self, people_doc,
                                                          monkeypatch):
        # The two backends are semantically identical, so strict mode
        # (which pins the *strategy*) still allows this degradation.
        from repro.compiled import CodegenError
        monkeypatch.setattr(
            "repro.engine.compile_plan",
            lambda plan: (_ for _ in ()).throw(CodegenError("forced")))
        baseline = Engine(people_doc).run(QUERY)
        engine = Engine(people_doc, backend="compiled", strict=True)
        assert people_values(engine.run(QUERY)) == people_values(baseline)

    def test_codegen_fallback_visible_in_trace(self, people_doc,
                                               monkeypatch):
        from repro.compiled import CodegenError
        monkeypatch.setattr(
            "repro.engine.compile_plan",
            lambda plan: (_ for _ in ()).throw(CodegenError("forced")))
        from repro.trace import Tracer
        engine = Engine(people_doc, backend="compiled")
        traced = engine.run_traced(QUERY, tracer=Tracer())
        assert [e.from_strategy for e in traced.fallbacks] == ["compiled"]
        events = [attrs for span in traced.trace.spans
                  for _, name, attrs in span.events if name == "fallback"]
        assert any(attrs.get("from_strategy") == "compiled"
                   for attrs in events)

    def test_step_trip_can_recover_on_cheaper_strategy(self, people_doc):
        # The streaming matcher charges a step per document event, more
        # than this budget; the item evaluator's per-operator charge
        # fits, so the run recovers (each attempt gets fresh steps).
        engine = Engine(people_doc, fallback_chain=[ITEM_EVALUATOR])
        compiled = engine.compile(QUERY)
        baseline = engine.execute(compiled, strategy="nljoin")
        metrics = ExecMetrics()
        recovered = engine.execute(compiled, strategy="streaming",
                                   budgets=Budgets(max_steps=40),
                                   metrics=metrics)
        assert people_values(recovered) == people_values(baseline)
        assert [e.error_code for e in metrics.fallbacks] \
            == ["REPRO-BUDGET-STEPS"]

    def test_query_errors_do_not_fall_back(self, people_engine):
        metrics = ExecMetrics()
        with pytest.raises(ValueError) as exc:
            people_engine.execute(
                people_engine.compile("let $x := 1 return $x/a"),
                metrics=metrics)
        assert exc.value.code == "REPRO-DYNAMIC"
        assert metrics.fallbacks == []


class TestTracedRunVisibility:
    def test_fallback_visible_in_traced_run(self, people_engine):
        with inject(ChaosSpec(site="twigjoin.match")):
            traced = people_engine.run_traced(QUERY, strategy="twigjoin")
        assert traced.strategy == "twigjoin"
        assert len(traced.fallbacks) == 1
        assert traced.fallbacks[0].to_strategy == "nljoin"
        assert "strategy fallback" in traced.report()
        assert "twigjoin -> nljoin" in traced.report()

    def test_effective_strategy_reports_fallback_target(self,
                                                        people_engine):
        with inject(ChaosSpec(site="twigjoin.match")):
            traced = people_engine.run_traced(QUERY, strategy="twigjoin")
        assert traced.strategy == "twigjoin"
        assert traced.effective_strategy == "nljoin"
        assert "effective: nljoin" in traced.report()

    def test_clean_run_has_no_fallbacks(self, people_engine):
        traced = people_engine.run_traced(QUERY, strategy="twigjoin")
        assert traced.fallbacks == []
        assert "strategy fallback" not in traced.report()
        assert traced.effective_strategy == traced.strategy
        assert "effective:" not in traced.report()

    def test_fallbacks_serialize(self, people_engine):
        with inject(ChaosSpec(site="scjoin.match")):
            traced = people_engine.run_traced(QUERY, strategy="scjoin")
        data = traced.metrics.to_dict()
        assert data["fallbacks"][0]["from"] == "scjoin"


class TestCli:
    def run_cli(self, argv, capsys):
        from repro.cli import main
        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_timeout_flag(self, capsys):
        code, _, err = self.run_cli(
            ["query", "$input//person/name", "--timeout", "0"], capsys)
        assert code == 2
        assert "REPRO-BUDGET-WALL" in err

    def test_max_steps_flag(self, capsys):
        code, _, err = self.run_cli(
            ["query", "$input//person/name", "--max-steps", "1",
             "--fallback-chain", "none"], capsys)
        assert code == 2
        assert "REPRO-BUDGET-STEPS" in err

    def test_syntax_error_renders_caret(self, capsys):
        code, _, err = self.run_cli(["query", "for $x in"], capsys)
        assert code == 2
        assert "REPRO-XQ-SYNTAX" in err
        assert "^" in err

    def test_strict_flag_accepted(self, capsys):
        code, out, _ = self.run_cli(
            ["query", "$input//person/name", "--strict"], capsys)
        assert code == 0
        assert "John" in out
