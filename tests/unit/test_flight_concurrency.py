"""FlightRecorder under concurrent ``record()`` / ``snapshot()``
(satellite of the telemetry-plane PR): a thread hammer plus invariant
checks — the recent ring stays bounded, the slowest-K heap is correctly
ordered, and no snapshot is ever torn.
"""

import threading

from repro.trace import FlightRecorder, Tracer


def finished_trace(tag):
    trace = Tracer().begin("request", tag=tag)
    return trace.finish()


def test_hammer_record_and_snapshot():
    recent_cap, slowest_cap = 16, 8
    recorder = FlightRecorder(recent=recent_cap, slowest=slowest_cap)
    writers, per_writer = 8, 200
    start = threading.Barrier(writers + 2)
    stop = threading.Event()
    failures = []

    def write(worker):
        start.wait()
        for i in range(per_writer):
            # Latencies collide across writers on purpose: tie-breaking
            # inside the heap runs under contention.
            latency = ((worker * per_writer + i) % 37) / 1000.0
            recorder.record(finished_trace(f"{worker}/{i}"),
                            latency=latency)

    def observe():
        start.wait()
        while not stop.is_set():
            snapshot = recorder.snapshot()
            try:
                check_snapshot(snapshot, recent_cap, slowest_cap)
            except AssertionError as err:  # pragma: no cover - on bug
                failures.append(err)
                return

    def check_snapshot(snapshot, recent_cap, slowest_cap):
        # Ring bounded; retention never exceeds what was recorded.
        assert len(snapshot.recent) <= recent_cap
        assert len(snapshot.slowest) <= slowest_cap
        assert snapshot.recorded >= len(snapshot.recent)
        # Recent is oldest-first by sequence, no duplicates (not torn).
        sequences = [entry.sequence for entry in snapshot.recent]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)
        # Slowest is slowest-first; equal latencies keep the older one
        # first (sequence ascending within a latency class).
        latencies = [entry.latency for entry in snapshot.slowest]
        assert latencies == sorted(latencies, reverse=True)
        for earlier, later in zip(snapshot.slowest,
                                  snapshot.slowest[1:]):
            if earlier.latency == later.latency:
                assert earlier.sequence < later.sequence
        # Every retained entry is fully formed (no half-written rows).
        for entry in (*snapshot.recent, *snapshot.slowest):
            assert entry.trace.trace_id
            assert entry.sequence >= 1

    threads = [threading.Thread(target=write, args=(w,))
               for w in range(writers)]
    observers = [threading.Thread(target=observe) for _ in range(2)]
    for thread in (*threads, *observers):
        thread.start()
    for thread in threads:
        thread.join()
    stop.set()
    for thread in observers:
        thread.join()

    assert not failures
    final = recorder.snapshot()
    check_snapshot(final, recent_cap, slowest_cap)
    assert final.recorded == writers * per_writer
    assert len(final.recent) == recent_cap
    assert len(final.slowest) == slowest_cap
    # The retained slowest really are the K largest latencies: with the
    # modular latency schedule every class 0..36ms appears many times,
    # so the K slowest must all come from the top classes.
    floor = min(entry.latency for entry in final.slowest)
    assert floor >= (37 - (slowest_cap + 1)) / 1000.0
