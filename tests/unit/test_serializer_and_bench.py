"""Serializer details and the benchmark-harness utilities."""

import os

import pytest

from repro.bench import (QE_QUERIES, STRATEGY_LABELS, generate_variants,
                         geometric_mean, render_table, scale, scaled,
                         table1_node_counts, time_call)
from repro.xmltree import parse_xml, serialize


class TestSerializer:
    def test_empty_element_self_closes(self):
        assert serialize(parse_xml("<a/>")) == "<a/>"

    def test_attributes_rendered(self):
        text = serialize(parse_xml('<a x="1" y="2"/>'))
        assert text == '<a x="1" y="2"/>'

    def test_text_escaping(self):
        doc = parse_xml("<a>&lt;x&gt; &amp; y</a>")
        assert serialize(doc) == "<a>&lt;x&gt; &amp; y</a>"

    def test_attribute_escaping(self):
        doc = parse_xml('<a x="&quot;q&quot; &lt;"/>')
        assert '&quot;q&quot;' in serialize(doc)

    def test_mixed_content_verbatim(self):
        text = "<a>one<b>two</b>three</a>"
        assert serialize(parse_xml(text)) == text

    def test_pretty_mode_element_content(self):
        doc = parse_xml("<a><b><c/></b><d/></a>")
        pretty = serialize(doc, indent=2)
        lines = pretty.splitlines()
        assert lines[0] == "<a>"
        assert any(line.startswith("  <b>") for line in lines)
        assert lines[-1] == "</a>"

    def test_pretty_round_trips(self):
        doc = parse_xml("<a><b><c/></b><d/></a>")
        pretty = serialize(doc, indent=2)
        reparsed = parse_xml(pretty)
        names = [n.name for n in reparsed.iter_descendants_or_self()
                 if n.name]
        assert names == ["a", "b", "c", "d"]

    def test_serialize_single_element(self):
        doc = parse_xml("<a><b>t</b></a>")
        b = doc.document_element.children[0]
        assert serialize(b) == "<b>t</b>"

    def test_serialize_attribute_node(self):
        doc = parse_xml('<a x="1"/>')
        attr = doc.document_element.attributes[0]
        assert serialize(attr) == 'x="1"'

    def test_serialize_text_node(self):
        doc = parse_xml("<a>x &amp; y</a>")
        text_node = doc.document_element.children[0]
        assert serialize(text_node) == "x &amp; y"

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            serialize(object())  # type: ignore[arg-type]


class TestHarness:
    def test_qe_queries_complete(self):
        assert sorted(QE_QUERIES) == [f"QE{i}" for i in range(1, 7)]
        for name, query in QE_QUERIES.items():
            assert query.startswith("$input/desc::t01")

    def test_strategy_labels(self):
        assert STRATEGY_LABELS == {"nljoin": "NL", "twigjoin": "TJ",
                                   "scjoin": "SC"}

    def test_scaled_respects_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.0")
        assert scale() == 2.0
        assert scaled(100) == 200
        monkeypatch.setenv("REPRO_SCALE", "0.001")
        assert scaled(100, minimum=50) == 50

    def test_table1_node_counts_increasing(self):
        counts = table1_node_counts()
        assert counts == sorted(counts)
        assert len(counts) == 5

    def test_time_call_returns_positive(self):
        assert time_call(lambda: sum(range(100)), repeats=2) > 0

    def test_geometric_mean(self):
        assert geometric_mean([4, 9]) == pytest.approx(6.0)
        assert geometric_mean([]) == 0.0

    def test_render_table_layout(self):
        table = render_table("Title", ["r1", "r2"], ["c1", "c2"],
                             {("r1", "c1"): 0.5, ("r1", "c2"): 1.0,
                              ("r2", "c1"): 2.0})
        lines = table.splitlines()
        assert lines[0] == "Title"
        assert "c1" in lines[1] and "c2" in lines[1]
        assert "0.50000" in table
        assert "-" in lines[3]  # missing cell placeholder

    def test_render_table_highlights_best(self):
        table = render_table("T", ["a", "b"], ["c"],
                             {("a", "c"): 2.0, ("b", "c"): 1.0},
                             highlight_best_per_group=2)
        assert "1.00000*" in table
        assert "2.00000*" not in table


class TestVariants:
    def test_exactly_twenty_unique(self):
        variants = generate_variants()
        assert len(variants) == 20
        assert len(set(variants)) == 20

    def test_first_is_pure_path(self):
        assert generate_variants()[0] == (
            "$input/site/people/person[emailaddress]/profile/interest")

    def test_where_variants_present(self):
        where_forms = [v for v in generate_variants() if "where" in v]
        assert len(where_forms) == 4
        for variant in where_forms:
            assert "[emailaddress]" not in variant

    def test_all_variants_parse(self):
        from repro.xquery import parse_query
        for variant in generate_variants():
            parse_query(variant)

    def test_for_clause_distribution(self):
        counts = [variant.count("for $") for variant in generate_variants()]
        assert min(counts) == 0
        assert max(counts) == 4
