"""The columnar document store: invariants, the facade, node_at.

Property tests drive randomly generated documents — with attributes and
text, the parts a tag-only generator misses — through
``ColumnarDocument.from_nodes`` and check the region-encoding
invariants the join algorithms rely on: dense ``pre``, ``post`` a
permutation, subtree intervals properly nested or disjoint,
``parent``/``level`` consistency, sorted per-tag streams.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Engine
from repro.xmltree import (ColumnarDocument, IndexedDocument, StorageError,
                           assign_regions, serialize)
from repro.xmltree.columnar import (KIND_ATTRIBUTE, KIND_DOCUMENT,
                                    KIND_ELEMENT, KIND_TEXT)
from repro.xmltree.node import DocumentNode, ElementNode, TextNode
from repro.xmltree.nodetest import (AnyKindTest, ElementTest, NameTest,
                                    TextTest, WildcardTest)

TAGS = ("a", "b", "c")
ATTR_NAMES = ("id", "lang", "ref")


@st.composite
def random_documents(draw, max_depth=4):
    """A random document *with attributes and text nodes*."""

    def element(depth):
        node = ElementNode(draw(st.sampled_from(TAGS)))
        for name in draw(st.lists(st.sampled_from(ATTR_NAMES),
                                  unique=True, max_size=3)):
            node.set_attribute(name, draw(st.text(
                alphabet="xyz0", max_size=3)))
        if depth < max_depth:
            for _ in range(draw(st.integers(0, 3))):
                if draw(st.booleans()):
                    node.append_child(element(depth + 1))
                else:
                    node.append_child(TextNode(draw(st.text(
                        alphabet="pq ", min_size=1, max_size=4))))
        return node

    document = DocumentNode()
    document.append_child(element(0))
    assign_regions(document)
    return IndexedDocument(document)


class TestColumnarInvariants:
    @settings(max_examples=60, deadline=None)
    @given(random_documents())
    def test_region_encoding_invariants(self, doc):
        columns = doc.columns
        n = columns.n
        assert n == doc.size
        # pre is dense (it IS the index); post is a permutation.
        assert sorted(columns.post) == list(range(n))
        for pre in range(n):
            # subtree intervals lie inside the parent's interval...
            assert pre <= columns.end[pre] < n
            parent = columns.parent[pre]
            if pre == 0:
                assert parent == -1 and columns.level[0] == 0
                assert columns.kind[0] == KIND_DOCUMENT
                continue
            # ...parent precedes child and level increments by one.
            assert 0 <= parent < pre
            assert columns.level[pre] == columns.level[parent] + 1
            assert columns.end[parent] >= columns.end[pre]
        # sibling subtree intervals are disjoint: children of one
        # parent never overlap.
        by_parent = {}
        for pre in range(1, n):
            by_parent.setdefault(columns.parent[pre], []).append(pre)
        for children in by_parent.values():
            previous_end = -1
            for pre in children:
                assert pre > previous_end
                previous_end = columns.end[pre]
        # validate() agrees these columns are sound.
        columns.validate()

    @settings(max_examples=60, deadline=None)
    @given(random_documents())
    def test_streams_sorted_and_complete(self, doc):
        columns = doc.columns
        for tag, stream in columns.tag_pres.items():
            assert list(stream) == sorted(stream)
            for pre in stream:
                assert columns.kind[pre] == KIND_ELEMENT
                assert columns.name_of(pre) == tag
        for name, stream in columns.attribute_pres.items():
            assert list(stream) == sorted(stream)
            for pre in stream:
                assert columns.kind[pre] == KIND_ATTRIBUTE
                assert columns.name_of(pre) == name
        assert sum(len(s) for s in columns.tag_pres.values()) == \
            len(columns.element_pres)
        assert [pre for pre in range(columns.n)
                if columns.kind[pre] == KIND_TEXT] == \
            list(columns.text_pres)

    @settings(max_examples=40, deadline=None)
    @given(random_documents())
    def test_columns_mirror_node_table(self, doc):
        columns = doc.columns
        for node in doc.nodes_by_pre:
            pre = node.pre
            assert columns.post[pre] == node.post
            assert columns.level[pre] == node.level
            assert columns.end[pre] == node.end
            expected_parent = node.parent.pre if node.parent else -1
            assert columns.parent[pre] == expected_parent
            assert columns.name_of(pre) == node.name

    @settings(max_examples=40, deadline=None)
    @given(random_documents())
    def test_test_matches_mirrors_nodetest(self, doc):
        columns = doc.columns
        tests = [NameTest("a"), NameTest("id"), WildcardTest(),
                 AnyKindTest(), TextTest(), ElementTest(),
                 ElementTest("b")]
        for node in doc.nodes_by_pre:
            for test in tests:
                for kind in ("element", "attribute"):
                    assert columns.test_matches(node.pre, test, kind) == \
                        test.matches(node, kind), (node, test, kind)

    @settings(max_examples=40, deadline=None)
    @given(random_documents())
    def test_attributes_of_matches_tree(self, doc):
        columns = doc.columns
        for node in doc.nodes_by_pre:
            if isinstance(node, ElementNode):
                assert list(columns.attributes_of(node.pre)) == \
                    [attribute.pre for attribute in node.attributes]


class TestFromNodesErrors:
    def test_non_dense_table_is_rejected(self):
        doc = IndexedDocument.from_string("<a><b/><c/></a>")
        for node in doc.nodes_by_pre:
            node.pre *= 2
        with pytest.raises(StorageError) as err:
            ColumnarDocument.from_nodes(sorted(doc.nodes_by_pre,
                                               key=lambda n: n.pre))
        assert err.value.code == "REPRO-STORAGE"


class TestFacade:
    XML = ('<site key="k1"><person id="p1"><name>John</name></person>'
           '<person id="p2"><name>Ada</name><note/></person></site>')

    def doc(self):
        return IndexedDocument.from_string(self.XML)

    def test_tree_first_columns_are_lazy_and_cached(self):
        doc = self.doc()
        assert not doc.has_columns
        columns = doc.columns
        assert doc.has_columns
        assert doc.columns is columns
        assert doc.store_kind == "object"

    def test_column_first_materializes_identical_tree(self):
        doc = self.doc()
        rebuilt = IndexedDocument(columns=doc.columns)
        assert rebuilt.store_kind == "columnar"
        assert serialize(rebuilt.root) == serialize(doc.root)
        assert [n.pre for n in rebuilt.nodes_by_pre] == \
            [n.pre for n in doc.nodes_by_pre]
        for ours, theirs in zip(rebuilt.nodes_by_pre, doc.nodes_by_pre):
            assert type(ours) is type(theirs)
            assert (ours.pre, ours.post, ours.level, ours.end) == \
                (theirs.pre, theirs.post, theirs.level, theirs.end)
        assert sorted(rebuilt.tag_streams) == sorted(doc.tag_streams)
        assert sorted(rebuilt.attribute_streams) == \
            sorted(doc.attribute_streams)
        assert len(rebuilt.text_stream) == len(doc.text_stream)

    def test_column_first_size_without_materialization(self):
        rebuilt = IndexedDocument(columns=self.doc().columns)
        assert rebuilt.size == len(self.doc().nodes_by_pre)
        # size did not force the tree into existence
        assert rebuilt._nodes_by_pre is None

    def test_exactly_one_source_required(self):
        doc = self.doc()
        with pytest.raises(ValueError):
            IndexedDocument()
        with pytest.raises(ValueError):
            IndexedDocument(doc.root, columns=doc.columns)

    def test_engine_runs_on_column_first_document(self):
        rebuilt = IndexedDocument(columns=self.doc().columns)
        engine = Engine(rebuilt)
        got = [n.string_value()
               for n in engine.run("$input//person[note]/name")]
        assert got == ["Ada"]


class TestNodeAt:
    """Regression for the old positional-indexing assumption."""

    XML = ('<r a="1" b="2" c="3"><x d="4" e="5"><y/></x>'
           '<z f="6" g="7" h="8" i="9"/></r>')

    @pytest.fixture(params=["object", "columnar"])
    def doc(self, request):
        tree_first = IndexedDocument.from_string(self.XML)
        if request.param == "object":
            return tree_first
        return IndexedDocument(columns=tree_first.columns)

    def test_attribute_heavy_lookup_is_exact(self, doc):
        # With 9 attributes interleaved into the numbering, every pre —
        # element or attribute — must come back as exactly that node.
        for node in list(doc.nodes_by_pre):
            assert doc.node_at(node.pre) is node

    def test_out_of_range_raises_keyerror(self, doc):
        size = doc.size
        for pre in (-1, -size, size, size + 7):
            with pytest.raises(KeyError):
                doc.node_at(pre)

    def test_sparse_table_falls_back_to_search(self):
        # A table that kept non-dense pre numbers (e.g. a re-rooted
        # fragment): position indexing would alias, the bisect fallback
        # must not.
        doc = IndexedDocument.from_string("<a><b/><c/><d/></a>")
        for node in doc.nodes_by_pre:
            node.pre *= 2
            node.end = node.end * 2 + 1
        sparse = IndexedDocument(doc.root)
        for node in sparse.nodes_by_pre:
            assert sparse.node_at(node.pre) is node
        with pytest.raises(KeyError):
            sparse.node_at(3)          # between two real pre numbers
        with pytest.raises(KeyError):
            sparse.node_at(1000)


class TestDistinctDocOrder:
    def test_ddo_dedupes_by_pre(self):
        from repro.xmltree import ddo
        doc = IndexedDocument.from_string("<a><b/><c/></a>")
        b = doc.stream("b")[0]
        c = doc.stream("c")[0]
        assert ddo([c, b, c, b, b]) == [b, c]
