"""Evaluation of the individual algebra operators."""

import pytest

from repro.algebra import (Arith, Compare, Const, DDOPlan, DynamicError,
                           EvalContext, FieldAccess, FnCall, IfPlan,
                           InputTuple, LetPlan, Logical, MapFromItem,
                           MapToItem, Select, SeqPlan, TreeJoin,
                           TupleTreePattern, VarPlan, eval_item, eval_tuples)
from repro.algebra.ops import TypeswitchCase, TypeswitchPlan
from repro.pattern import parse_pattern
from repro.physical import NLJoin
from repro.xmltree import IndexedDocument
from repro.xmltree.axes import Axis
from repro.xmltree.nodetest import NameTest
from repro.xqcore import fresh_var

DOC = IndexedDocument.from_string(
    "<a><b i='1'>x</b><c><b i='2'>y</b></c></a>")


def ctx(**globals_by_name):
    return EvalContext(document=DOC, strategy=NLJoin())


class TestItemOperators:
    def test_const(self):
        assert eval_item(Const((1, "a")), ctx()) == [1, "a"]
        assert eval_item(Const(()), ctx()) == []

    def test_var_lookup(self):
        var = fresh_var("d", origin="external")
        context = ctx()
        context.globals[var] = [42]
        assert eval_item(VarPlan(var), context) == [42]

    def test_unbound_var_raises(self):
        with pytest.raises(DynamicError):
            eval_item(VarPlan(fresh_var("nope")), ctx())

    def test_tree_join(self):
        var = fresh_var("d", origin="external")
        context = ctx()
        context.globals[var] = [DOC.root]
        plan = TreeJoin(Axis.DESCENDANT, NameTest("b"), VarPlan(var))
        result = eval_item(plan, context)
        assert [n.get_attribute("i") for n in result] == ["1", "2"]

    def test_tree_join_over_non_node_raises(self):
        with pytest.raises(DynamicError):
            eval_item(TreeJoin(Axis.CHILD, NameTest("b"), Const((1,))),
                      ctx())

    def test_ddo(self):
        b1, b2 = DOC.stream("b")
        var = fresh_var("v")
        context = ctx()
        context.globals[var] = [b2, b1, b2]
        result = eval_item(DDOPlan(VarPlan(var)), context)
        assert result == [b1, b2]

    def test_fncall(self):
        assert eval_item(FnCall("fn:count", [Const((1, 2, 3))]), ctx()) == [3]

    def test_compare_existential(self):
        plan = Compare("=", Const((1, 2)), Const((2, 5)))
        assert eval_item(plan, ctx()) == [True]
        plan = Compare(">", Const((1, 2)), Const((5,)))
        assert eval_item(plan, ctx()) == [False]

    def test_logical_short_circuit(self):
        # right operand would raise, but the left decides
        bad = FnCall("fn:no-such", [])
        assert eval_item(Logical("and", Const((False,)), bad), ctx()) == [False]
        assert eval_item(Logical("or", Const((True,)), bad), ctx()) == [True]

    def test_arith(self):
        assert eval_item(Arith("+", Const((2,)), Const((3,))), ctx()) == [5]
        assert eval_item(Arith("*", Const((2,)), Const((3,))), ctx()) == [6]
        assert eval_item(Arith("+", Const(()), Const((3,))), ctx()) == []

    def test_if(self):
        plan = IfPlan(Const((True,)), Const((1,)), Const((2,)))
        assert eval_item(plan, ctx()) == [1]
        plan = IfPlan(Const(()), Const((1,)), Const((2,)))
        assert eval_item(plan, ctx()) == [2]

    def test_let(self):
        var = fresh_var("x")
        plan = LetPlan(var, Const((5,)),
                       Arith("+", VarPlan(var), VarPlan(var)))
        assert eval_item(plan, ctx()) == [10]

    def test_let_scoping_restored(self):
        var = fresh_var("x")
        context = ctx()
        context.variables[var] = [1]
        plan = LetPlan(var, Const((2,)), VarPlan(var))
        assert eval_item(plan, context) == [2]
        assert context.variables[var] == [1]

    def test_seq(self):
        plan = SeqPlan([Const((1,)), Const((2, 3))])
        assert eval_item(plan, ctx()) == [1, 2, 3]

    def test_typeswitch_numeric_dispatch(self):
        case_var = fresh_var("v")
        default_var = fresh_var("v")
        plan = TypeswitchPlan(
            Const((5,)),
            [TypeswitchCase("numeric", case_var, VarPlan(case_var))],
            default_var, Const(("default",)))
        assert eval_item(plan, ctx()) == [5]
        plan = TypeswitchPlan(
            Const(("str",)),
            [TypeswitchCase("numeric", case_var, VarPlan(case_var))],
            default_var, Const(("default",)))
        assert eval_item(plan, ctx()) == ["default"]


class TestTupleOperators:
    def test_map_from_item(self):
        plan = MapFromItem("f", Const((10, 20)))
        tuples = eval_tuples(plan, ctx())
        assert tuples == [{"f": [10]}, {"f": [20]}]

    def test_map_from_item_with_index(self):
        plan = MapFromItem("f", Const(("a", "b")), index_field="i")
        tuples = eval_tuples(plan, ctx())
        assert tuples == [{"f": ["a"], "i": [1]}, {"f": ["b"], "i": [2]}]

    def test_map_to_item_concatenates(self):
        plan = MapToItem(FieldAccess("f"), MapFromItem("f", Const((1, 2))))
        assert eval_item(plan, ctx()) == [1, 2]

    def test_select_filters(self):
        plan = Select(Compare("=", FieldAccess("f"), Const((2,))),
                      MapFromItem("f", Const((1, 2, 3))))
        tuples = eval_tuples(plan, ctx())
        assert tuples == [{"f": [2]}]

    def test_input_tuple_outside_dependent_raises(self):
        with pytest.raises(DynamicError):
            eval_tuples(InputTuple(), ctx())

    def test_field_access_through_scope_chain(self):
        # inner map reads a field bound by the outer map
        inner = MapToItem(FieldAccess("outer"),
                          MapFromItem("inner", Const((9,))))
        plan = MapToItem(inner, MapFromItem("outer", Const((1, 2))))
        assert eval_item(plan, ctx()) == [1, 2]

    def test_ttp_single_output(self):
        var = fresh_var("d", origin="external")
        context = ctx()
        context.globals[var] = [DOC.root]
        pattern = parse_pattern("IN#dot/descendant::b{out}")
        plan = MapToItem(FieldAccess("out"),
                         TupleTreePattern(pattern,
                                          MapFromItem("dot", VarPlan(var))))
        result = eval_item(plan, context)
        assert [n.get_attribute("i") for n in result] == ["1", "2"]

    def test_ttp_extends_input_tuple(self):
        var = fresh_var("d", origin="external")
        context = ctx()
        context.globals[var] = [DOC.root]
        pattern = parse_pattern("IN#dot/descendant::b{out}")
        plan = TupleTreePattern(pattern, MapFromItem("dot", VarPlan(var)))
        tuples = eval_tuples(plan, context)
        assert len(tuples) == 2
        for tuple_ in tuples:
            assert set(tuple_) == {"dot", "out"}

    def test_ttp_drops_non_matching_tuples(self):
        var = fresh_var("d", origin="external")
        context = ctx()
        context.globals[var] = [DOC.root]
        pattern = parse_pattern("IN#dot/child::zzz{out}")
        plan = TupleTreePattern(pattern, MapFromItem("dot", VarPlan(var)))
        assert eval_tuples(plan, context) == []

    def test_ttp_multi_output_bindings(self):
        """The paper's Section 4.1 example semantics."""
        doc = IndexedDocument.from_string(
            '<r><a><c id="1"><d id="2"/><d id="3"/></c></a>'
            '<a><c/></a>'
            '<a><c id="4"><d id="5"/></c><c id="6"/></a></r>')
        contexts = doc.stream("a")
        var = fresh_var("d", origin="external")
        context = EvalContext(document=doc, strategy=NLJoin())
        context.globals[var] = contexts
        pattern = parse_pattern(
            "IN#x/descendant-or-self::a/child::c{y}[@id]/child::d{z}")
        plan = TupleTreePattern(pattern, MapFromItem("x", VarPlan(var)))
        tuples = eval_tuples(plan, context)
        ids = [(t["y"][0].get_attribute("id"), t["z"][0].get_attribute("id"))
               for t in tuples]
        # first tuple matches twice, second not at all, third once
        assert ids == [("1", "2"), ("1", "3"), ("4", "5")]
