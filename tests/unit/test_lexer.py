"""XQuery lexer."""

import pytest

from repro.xquery.lexer import (DECIMAL, EOF, INTEGER, NAME, STRING, SYMBOL,
                                VARIABLE, XQuerySyntaxError, tokenize)


def kinds(text):
    return [(token.type, token.value) for token in tokenize(text)
            if token.type != EOF]


class TestTokens:
    def test_variables(self):
        assert kinds("$x $long-name $ns:qualified") == [
            (VARIABLE, "x"), (VARIABLE, "long-name"),
            (VARIABLE, "ns:qualified")]

    def test_numbers(self):
        assert kinds("1 42 3.14") == [
            (INTEGER, "1"), (INTEGER, "42"), (DECIMAL, "3.14")]

    def test_strings_both_quotes(self):
        assert kinds("\"abc\" 'def'") == [(STRING, "abc"), (STRING, "def")]

    def test_string_escape_by_doubling(self):
        assert kinds('"a""b"') == [(STRING, 'a"b')]
        assert kinds("'a''b'") == [(STRING, "a'b")]

    def test_qnames(self):
        assert kinds("fn:count child person") == [
            (NAME, "fn:count"), (NAME, "child"), (NAME, "person")]

    def test_axis_separator_not_a_qname(self):
        assert kinds("child::a") == [
            (NAME, "child"), (SYMBOL, "::"), (NAME, "a")]

    def test_multichar_symbols(self):
        assert kinds("// :: := .. != <= >=") == [
            (SYMBOL, "//"), (SYMBOL, "::"), (SYMBOL, ":="), (SYMBOL, ".."),
            (SYMBOL, "!="), (SYMBOL, "<="), (SYMBOL, ">=")]

    def test_path_expression(self):
        assert kinds("$d//person[1]/name") == [
            (VARIABLE, "d"), (SYMBOL, "//"), (NAME, "person"),
            (SYMBOL, "["), (INTEGER, "1"), (SYMBOL, "]"), (SYMBOL, "/"),
            (NAME, "name")]

    def test_comments_skipped(self):
        assert kinds("1 (: comment :) 2") == [(INTEGER, "1"), (INTEGER, "2")]

    def test_nested_comments(self):
        assert kinds("1 (: a (: b :) c :) 2") == [
            (INTEGER, "1"), (INTEGER, "2")]

    def test_eof_token_present(self):
        tokens = tokenize("1")
        assert tokens[-1].type == EOF

    def test_positions(self):
        tokens = tokenize("  $x")
        assert tokens[0].position == 2


class TestLexErrors:
    @pytest.mark.parametrize("text", [
        '"unterminated',
        "'unterminated",
        "$",
        "(: unterminated",
        "#",
    ])
    def test_raises(self, text):
        with pytest.raises(XQuerySyntaxError):
            tokenize(text)
