"""The pre-order range sharder (:mod:`repro.xmltree.shard`).

Each shard must be a *valid, self-contained* columnar document — spine
(document node, root element, root attributes) plus a contiguous run of
the root's child subtrees — whose local↔global pre mapping covers the
original document exactly once (spine aside, which every shard
replicates).
"""

from __future__ import annotations

import os

import pytest

from repro import IndexedDocument
from repro.data import member_document, xmark_document
from repro.xmltree import (KIND_ATTRIBUTE, KIND_DOCUMENT, KIND_ELEMENT,
                           ShardManifest, StorageError, split_document,
                           write_shard_layout)


@pytest.fixture(scope="module")
def member_columns():
    return member_document(900, depth=5, tag_count=6, seed=13).columns


@pytest.fixture(scope="module")
def xmark_columns():
    return xmark_document(40, seed=11).columns


@pytest.mark.parametrize("shard_count", [1, 2, 4, 8])
def test_shards_are_valid_documents(member_columns, shard_count):
    for shard in split_document(member_columns, shard_count):
        shard.columns.validate()


@pytest.mark.parametrize("shard_count", [1, 2, 4, 8])
def test_global_cover_is_exact(xmark_columns, shard_count):
    """Unit node sets partition; spine nodes replicate everywhere."""
    shards = split_document(xmark_columns, shard_count)
    spine = shards[0].spine_len
    unit_pres = []
    for shard in shards:
        # Spine maps to itself in every shard.
        for pre in range(spine):
            assert shard.to_global(pre) == pre
        unit_pres.extend(shard.to_global(pre)
                         for pre in range(spine, shard.columns.n))
    assert sorted(unit_pres) == list(range(spine, xmark_columns.n))


def test_shard_subtrees_are_closed(xmark_columns):
    """Within a shard, every non-spine node's subtree is entirely local
    — the property that makes scatter evaluation exact."""
    for shard in split_document(xmark_columns, 4):
        columns = shard.columns
        for pre in range(shard.spine_len, columns.n):
            assert shard.spine_len <= columns.end[pre] < columns.n


def test_shard_structure_matches_source(xmark_columns):
    """Names, text and parent/level structure survive the remap."""
    for shard in split_document(xmark_columns, 3):
        columns = shard.columns
        for pre in range(columns.n):
            source = shard.to_global(pre)
            assert columns.kind[pre] == xmark_columns.kind[source]
            assert columns.level[pre] == xmark_columns.level[source]
            if columns.kind[pre] in (KIND_ELEMENT, KIND_ATTRIBUTE):
                assert columns.names[columns.name_id[pre]] == \
                    xmark_columns.names[xmark_columns.name_id[source]]
            if columns.kind[pre] != KIND_DOCUMENT and pre > 0:
                parent = columns.parent[pre]
                assert shard.to_global(parent) == \
                    xmark_columns.parent[source]


def test_skewed_document_may_yield_fewer_shards():
    """One giant subtree cannot be split; the sharder degrades to fewer
    groups rather than producing an unbalanced empty shard."""
    doc = IndexedDocument.from_string(
        "<r><big>" + "<x/>" * 50 + "</big><small/></r>")
    shards = split_document(doc.columns, 4)
    assert 1 <= len(shards) <= 4
    covered = sorted(
        shard.to_global(pre)
        for shard in shards
        for pre in range(shards[0].spine_len, shard.columns.n))
    assert covered == list(range(shards[0].spine_len, doc.columns.n))


def test_spine_only_document():
    doc = IndexedDocument.from_string('<r a="1"/>')
    shards = split_document(doc.columns, 4)
    assert len(shards) == 1
    assert shards[0].columns.n == doc.columns.n


def test_invalid_shard_count(member_columns):
    with pytest.raises(StorageError):
        split_document(member_columns, 0)


def test_layout_round_trip(tmp_path, xmark_columns):
    manifest_path = write_shard_layout(xmark_columns, str(tmp_path),
                                       "xmark", 4)
    manifest = ShardManifest.load(manifest_path)
    assert manifest.name == "xmark"
    assert manifest.total_nodes == xmark_columns.n
    assert manifest.root_tag == "site"
    assert len(manifest.shard_files) == manifest.shard_count
    # Full index plus every shard reopen verified from disk.
    from repro.xmltree import ColumnarDocument
    full = ColumnarDocument.open(
        os.path.join(str(tmp_path), manifest.index_file), verify=True)
    assert full.n == xmark_columns.n
    full.close()
    for index, file_name in enumerate(manifest.shard_files):
        shard = ColumnarDocument.open(
            os.path.join(str(tmp_path), file_name), verify=True)
        # Runs cover the whole shard, spine run included.
        assert shard.n == sum(
            run.length for run in manifest.runs_for(index))
        shard.close()


def test_manifest_rejects_future_version(tmp_path, member_columns):
    manifest_path = write_shard_layout(member_columns, str(tmp_path),
                                       "member", 2)
    import json
    with open(manifest_path, encoding="utf-8") as handle:
        data = json.load(handle)
    data["version"] = 99
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(data, handle)
    with pytest.raises(StorageError):
        ShardManifest.load(manifest_path)
