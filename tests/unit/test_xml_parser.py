"""XML parser behaviour, including error handling."""

import pytest

from repro.xmltree import XMLSyntaxError, parse_xml, serialize
from repro.xmltree.node import ElementNode, TextNode


class TestWellFormed:
    def test_minimal(self):
        doc = parse_xml("<a/>")
        assert doc.document_element.name == "a"
        assert doc.document_element.children == []

    def test_nested_elements(self):
        doc = parse_xml("<a><b/><c><d/></c></a>")
        root = doc.document_element
        assert [child.name for child in root.children] == ["b", "c"]
        assert root.children[1].children[0].name == "d"

    def test_attributes(self):
        doc = parse_xml("<a x='1' y=\"two\"/>")
        root = doc.document_element
        assert root.get_attribute("x") == "1"
        assert root.get_attribute("y") == "two"

    def test_text_content(self):
        doc = parse_xml("<a>hello <b>world</b>!</a>")
        root = doc.document_element
        assert isinstance(root.children[0], TextNode)
        assert root.string_value() == "hello world!"

    def test_predefined_entities(self):
        doc = parse_xml("<a>&lt;&gt;&amp;&apos;&quot;</a>")
        assert doc.document_element.string_value() == "<>&'\""

    def test_numeric_entities(self):
        doc = parse_xml("<a>&#65;&#x42;</a>")
        assert doc.document_element.string_value() == "AB"

    def test_entities_in_attributes(self):
        doc = parse_xml('<a x="&lt;tag&gt;"/>')
        assert doc.document_element.get_attribute("x") == "<tag>"

    def test_cdata(self):
        doc = parse_xml("<a><![CDATA[<not><parsed>&amp;]]></a>")
        assert doc.document_element.string_value() == "<not><parsed>&amp;"

    def test_comments_skipped(self):
        doc = parse_xml("<!-- lead --><a><!-- inner -->x</a><!-- tail -->")
        assert doc.document_element.string_value() == "x"

    def test_processing_instructions_skipped(self):
        doc = parse_xml("<?xml version='1.0'?><a><?pi data?>x</a>")
        assert doc.document_element.string_value() == "x"

    def test_doctype_skipped(self):
        doc = parse_xml("<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>")
        assert doc.document_element.name == "a"

    def test_prefixed_names(self):
        doc = parse_xml('<ns:a ns:x="1"><ns:b/></ns:a>')
        assert doc.document_element.name == "ns:a"
        assert doc.document_element.get_attribute("ns:x") == "1"

    def test_whitespace_preserved(self):
        doc = parse_xml("<a> <b/> </a>")
        texts = [child for child in doc.document_element.children
                 if isinstance(child, TextNode)]
        assert [t.text for t in texts] == [" ", " "]

    def test_names_with_dots_and_dashes(self):
        doc = parse_xml("<a-b.c_d><e-1/></a-b.c_d>")
        assert doc.document_element.name == "a-b.c_d"


class TestErrors:
    @pytest.mark.parametrize("text", [
        "",
        "<a>",
        "<a></b>",
        "<a",
        "<a x=1/>",
        "<a x='1' x='2'/>",
        "<a/><b/>",
        "<a>&unknown;</a>",
        "<a><![CDATA[oops</a>",
        "<!-- unterminated <a/>",
        "text only",
    ])
    def test_malformed_raises(self, text):
        with pytest.raises(XMLSyntaxError):
            parse_xml(text)

    def test_error_carries_position(self):
        with pytest.raises(XMLSyntaxError) as info:
            parse_xml("<a></b>")
        assert info.value.position > 0


class TestRoundTrip:
    @pytest.mark.parametrize("text", [
        "<a/>",
        "<a><b/><c/></a>",
        '<a x="1"><b y="2">t</b></a>',
        "<a>x<b>y</b>z</a>",
        "<a>&lt;escaped&gt;</a>",
    ])
    def test_parse_serialize_parse(self, text):
        doc = parse_xml(text)
        text2 = serialize(doc)
        doc2 = parse_xml(text2)
        assert serialize(doc2) == text2

    def test_region_numbering_assigned(self):
        doc = parse_xml("<a><b/><c/></a>")
        nodes = list(doc.iter_descendants_or_self())
        pres = [node.pre for node in nodes]
        assert pres == sorted(pres)
        assert pres[0] == 0
