"""The structural path summary: construction, prefilter, selectivity."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import IndexedDocument
from repro.data import member_document, xmark_document
from repro.pattern import parse_pattern
from repro.xmltree import PathSummary
from repro.xmltree.node import ElementNode

RECURSIVE_XML = ("<a><a><a><b/></a></a><b><a/></b>x</a>")
ATTR_ONLY_XML = '<r><e a="1" b="2"/><e c="3"/></r>'


def path(text: str):
    """A PatternPath from the pattern notation used across the tests."""
    return parse_pattern(f"IN#d/{text}{{o}}").path


# -- construction --------------------------------------------------------------

class TestConstruction:
    def test_recursive_tags_get_distinct_paths(self):
        summary = IndexedDocument.from_string(RECURSIVE_XML).summary
        assert summary.path_count(("a",)) == 1
        assert summary.path_count(("a", "a")) == 1
        assert summary.path_count(("a", "a", "a")) == 1
        assert summary.path_count(("a", "b", "a")) == 1
        # Same tag, different paths: the recursion is kept apart.
        assert sorted(summary.tag_paths["a"]) == [
            ("a",), ("a", "a"), ("a", "a", "a"), ("a", "b", "a")]

    def test_depth_range_spans_subtree(self):
        summary = IndexedDocument.from_string(RECURSIVE_XML).summary
        assert summary.stats[("a",)].depth_range == (1, 4)
        assert summary.stats[("a", "a", "a")].depth_range == (3, 4)
        assert summary.stats[("a", "a", "a", "b")].depth_range == (4, 4)

    def test_child_tag_fanout(self):
        summary = IndexedDocument.from_string(RECURSIVE_XML).summary
        root = summary.stats[("a",)]
        assert root.child_tags == {"a": 1, "b": 1}
        assert root.fanout == 2
        assert summary.stats[("a", "a", "a", "b")].fanout == 0

    def test_single_element_document(self):
        summary = IndexedDocument.from_string("<r/>").summary
        assert len(summary) == 1
        assert summary.total_elements == 1
        assert summary.total_text == 0
        stats = summary.stats[("r",)]
        assert stats.count == 1 and stats.height == 0
        assert stats.depth_range == (1, 1)
        assert not stats.child_tags and not stats.attributes

    def test_attribute_only_children(self):
        summary = IndexedDocument.from_string(ATTR_ONLY_XML).summary
        stats = summary.stats[("r", "e")]
        # Both <e> elements share the path; their attribute names pool.
        assert stats.count == 2
        assert stats.attributes == {"a", "b", "c"}
        assert stats.fanout == 0 and stats.text_count == 0
        assert summary.stats[("r",)].attributes == set()

    def test_text_accounting(self):
        summary = IndexedDocument.from_string(RECURSIVE_XML).summary
        assert summary.total_text == 1
        assert summary.stats[("a",)].text_count == 1
        assert summary.stats[("a",)].text_below == 1
        assert summary.stats[("a", "a")].text_below == 0

    def test_summary_is_cached_on_document(self):
        document = IndexedDocument.from_string("<r><s/></r>")
        assert document.summary is document.summary
        assert isinstance(document.summary, PathSummary)


# -- the prefilter -------------------------------------------------------------

class TestCanMatch:
    @pytest.fixture(scope="class")
    def summary(self):
        return IndexedDocument.from_string(RECURSIVE_XML).summary

    def test_present_chains_pass(self, summary):
        assert summary.can_match(path("child::a/child::a/child::a"))
        assert summary.can_match(path("desc::b/child::a"))
        assert summary.can_match(path("desc::a[child::b]"))

    def test_absent_tag_prunes(self, summary):
        assert not summary.can_match(path("desc::missing"))
        # Context-free, child::b starts anywhere (<a> has a b child);
        # from the document node it cannot (the root element is <a>).
        assert summary.can_match(path("child::b"))
        assert not summary.can_match(path("child::b"),
                                     [summary.document.root])

    def test_impossible_branch_prunes(self, summary):
        assert not summary.can_match(path("desc::b[child::b]"))
        assert not summary.can_match(path("desc::a[desc::missing]"))

    def test_over_deep_chain_prunes(self, summary):
        chain = "/".join(["child::a"] * 5)
        assert not summary.can_match(path(chain))

    def test_contexts_sharpen_the_answer(self, summary):
        document = summary.document
        inner_b = [node for node in document.all_elements()
                   if node.name == "b"]
        # Globally <a> under <b> exists; from the deep <b> leaf it
        # cannot (that b has no element children).
        assert summary.can_match(path("child::a"), inner_b)
        leaf = [node for node in inner_b
                if summary.path_of(node) == ("a", "a", "a", "b")]
        assert not summary.can_match(path("child::a"), leaf)

    def test_positions_never_prune(self, summary):
        # [5] cannot be satisfied (single child) but positions are
        # ignored: the answer must stay conservative, not become False.
        assert summary.can_match(path("child::a[5]"))

    def test_unsupported_axes_never_prune(self, summary):
        assert summary.can_match(path("parent::nosuchtag"))

    def test_attribute_steps(self):
        summary = IndexedDocument.from_string(ATTR_ONLY_XML).summary
        assert summary.can_match(path("child::e/attribute::a"))
        assert not summary.can_match(path("child::e/attribute::zz"))
        # The document node itself carries no attributes.
        assert not summary.can_match(path("attribute::a"),
                                     [summary.document.root])


# -- selectivity ---------------------------------------------------------------

class TestPatternVolume:
    def test_exact_counts_on_recursive_doc(self):
        summary = IndexedDocument.from_string(RECURSIVE_XML).summary
        assert summary.pattern_volume(path("desc::a")) == 4.0
        assert summary.pattern_volume(path("desc::b")) == 2.0
        assert summary.pattern_volume(path("desc::missing")) == 0.0

    def test_branches_add_volume(self):
        summary = IndexedDocument.from_string(RECURSIVE_XML).summary
        spine = summary.pattern_volume(path("desc::a"))
        branched = summary.pattern_volume(path("desc::a[child::b]"))
        assert branched > spine

    def test_unsupported_axis_yields_none(self):
        summary = IndexedDocument.from_string(RECURSIVE_XML).summary
        assert summary.pattern_volume(path("parent::a")) is None


# -- conservation property -----------------------------------------------------

def count_elements(document) -> int:
    total = 0
    stack = [document.root]
    while stack:
        node = stack.pop()
        for child in node.children:
            if isinstance(child, ElementNode):
                total += 1
                stack.append(child)
    return total


@given(seed=st.integers(0, 6), size=st.integers(20, 400),
       depth=st.integers(2, 7), tags=st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_path_counts_sum_to_element_count(seed, size, depth, tags):
    document = member_document(size, depth=depth, tag_count=tags,
                               seed=seed)
    summary = PathSummary(document)
    by_paths = sum(stats.count for stats in summary.stats.values())
    assert by_paths == summary.total_elements == count_elements(document)


@given(seed=st.integers(0, 4), persons=st.integers(1, 25))
@settings(max_examples=20, deadline=None)
def test_path_counts_sum_on_xmark(seed, persons):
    document = xmark_document(persons, seed=seed)
    summary = PathSummary(document)
    by_paths = sum(stats.count for stats in summary.stats.values())
    assert by_paths == summary.total_elements == count_elements(document)
