"""Plan rendering branches and canonical invariance."""

from repro.algebra import (Arith, Compare, Const, FieldAccess, FnCall,
                           IfPlan, InputTuple, LetPlan, Logical,
                           MapFromItem, MapToItem, SeqPlan, VarPlan,
                           plan_canonical, plan_to_string)
from repro.algebra.ops import TypeswitchCase, TypeswitchPlan
from repro import Engine
from repro.xqcore import fresh_var

ENGINE = Engine.from_xml("<a/>")


class TestRenderBranches:
    def test_const_sequences(self):
        assert plan_to_string(Const((1,))) == "1"
        assert plan_to_string(Const((1, "a"))) == '(1, "a")'
        assert plan_to_string(Const((True,))) == "fn:true()"
        assert plan_to_string(Const(('say "hi"',))) == '"say ""hi"""'

    def test_if_plan(self):
        plan = IfPlan(Const((True,)), Const((1,)), Const((2,)))
        text = plan_to_string(plan)
        assert text == "If{fn:true()}(1; 2)"

    def test_let_plan(self):
        var = fresh_var("x")
        plan = LetPlan(var, Const((1,)), VarPlan(var))
        text = plan_to_string(plan)
        assert "Let[$x := 1]" in text

    def test_seq_plan(self):
        text = plan_to_string(SeqPlan([Const((1,)), Const((2,))]))
        assert text == "Seq(1; 2)"

    def test_logical_and_arith(self):
        plan = Logical("and", Const((True,)),
                       Arith("+", Const((1,)), Const((2,))))
        text = plan_to_string(plan)
        assert "(fn:true() and (1 + 2))" in text

    def test_typeswitch_plan(self):
        case_var, default_var = fresh_var("v"), fresh_var("w")
        plan = TypeswitchPlan(
            Const((1,)),
            [TypeswitchCase("numeric", case_var, VarPlan(case_var))],
            default_var, Const(("d",)))
        text = plan_to_string(plan)
        assert "Typeswitch{1}(" in text
        assert "case $v as numeric()" in text
        assert "default $w" in text

    def test_input_tuple(self):
        assert plan_to_string(InputTuple()) == "IN"

    def test_map_from_item_with_index(self):
        plan = MapFromItem("f", Const((1,)), index_field="i")
        assert "f : IN; i : INDEX" in plan_to_string(plan)

    def test_compare(self):
        plan = Compare("<", FieldAccess("a"), Const((3,)))
        assert plan_to_string(plan) == "IN#a < 3"


class TestCanonical:
    def test_invariant_under_field_names(self):
        one = ENGINE.compile("$d//a[b]/c").canonical_plan()
        two = ENGINE.compile("$d//a[b]/c").canonical_plan()
        assert one == two

    def test_distinguishes_structure(self):
        one = ENGINE.compile("$d//a[b]/c").canonical_plan()
        two = ENGINE.compile("$d//a[c]/b").canonical_plan()
        assert one != two

    def test_canonical_covers_let_and_typeswitch_vars(self):
        compiled = ENGINE.compile("$d//a[position() = last()]",
                                  optimize=True)
        text = plan_canonical(compiled.optimized)
        assert text  # renders without error

    def test_unoptimized_plan_canonical(self):
        compiled = ENGINE.compile("for $x in $d/a let $y := $x/b "
                                  "where $y return count($y)")
        assert plan_canonical(compiled.plan)
        assert plan_canonical(compiled.optimized)
