"""The sequence-facts analysis: ord/nodup, separated, confinement."""

from repro.rewrite.facts import (Facts, SINGLETON, UNKNOWN,
                                 confined_to_subtree, sequence_facts)
from repro.xmltree.axes import Axis
from repro.xmltree.nodetest import NameTest
from repro.xqcore import (CCall, CDDO, CEmpty, CFor, CIf, CLet, CLit, CSeq,
                          CStep, CVar, fresh_var)


def step(axis, name, input_expr):
    return CStep(axis, NameTest(name), input_expr)


def ext(name="d"):
    return fresh_var(name, origin="external")


class TestBasicFacts:
    def test_external_variable_singleton(self):
        facts = sequence_facts(CVar(ext()))
        assert facts.singleton and facts.ord_nodup and facts.separated

    def test_literal_singleton(self):
        assert sequence_facts(CLit(1)) == SINGLETON

    def test_empty_ordered(self):
        facts = sequence_facts(CEmpty())
        assert facts.ord_nodup and facts.separated and not facts.singleton

    def test_unknown_user_variable(self):
        assert sequence_facts(CVar(fresh_var("u"))) == UNKNOWN

    def test_ddo_establishes_order(self):
        facts = sequence_facts(CDDO(CVar(fresh_var("u"))))
        assert facts.ord_nodup
        assert not facts.separated  # sorting cannot separate

    def test_count_singleton(self):
        facts = sequence_facts(CCall("fn:count", [CEmpty()]))
        assert facts.singleton


class TestStepFacts:
    def test_child_from_singleton(self):
        facts = sequence_facts(step(Axis.CHILD, "a", CVar(ext())))
        assert facts.ord_nodup and facts.separated and not facts.singleton

    def test_descendant_from_singleton_not_separated(self):
        facts = sequence_facts(step(Axis.DESCENDANT, "a", CVar(ext())))
        assert facts.ord_nodup and not facts.separated

    def test_child_chain_stays_separated(self):
        chain = step(Axis.CHILD, "b", step(Axis.CHILD, "a", CVar(ext())))
        facts = sequence_facts(chain)
        assert facts.ord_nodup and facts.separated

    def test_child_after_descendant_unknown(self):
        chain = step(Axis.CHILD, "b",
                     step(Axis.DESCENDANT, "a", CVar(ext())))
        facts = sequence_facts(chain)
        assert not facts.ord_nodup

    def test_descendant_after_child_sorted(self):
        chain = step(Axis.DESCENDANT, "b", step(Axis.CHILD, "a", CVar(ext())))
        facts = sequence_facts(chain)
        assert facts.ord_nodup and not facts.separated

    def test_parent_from_singleton(self):
        facts = sequence_facts(step(Axis.PARENT, "a", CVar(ext())))
        assert facts.ord_nodup
        assert not facts.singleton  # the parent may not exist

    def test_ancestor_unknown(self):
        facts = sequence_facts(step(Axis.ANCESTOR, "a", CVar(ext())))
        assert facts == UNKNOWN


class TestLoopFacts:
    def test_filter_loop_preserves_facts(self):
        x = fresh_var("x")
        source = step(Axis.CHILD, "a", CVar(ext()))
        loop = CFor(x, None, source, CCall("fn:boolean", [CVar(x)]), CVar(x))
        facts = sequence_facts(loop)
        assert facts.ord_nodup and facts.separated

    def test_loop_rule_child_body(self):
        x = fresh_var("x")
        source = step(Axis.CHILD, "a", CVar(ext()))
        loop = CFor(x, None, source, None, step(Axis.CHILD, "b", CVar(x)))
        facts = sequence_facts(loop)
        assert facts.ord_nodup and facts.separated

    def test_loop_rule_descendant_body(self):
        x = fresh_var("x")
        source = step(Axis.CHILD, "a", CVar(ext()))
        loop = CFor(x, None, source,
                    None, step(Axis.DESCENDANT, "b", CVar(x)))
        facts = sequence_facts(loop)
        assert facts.ord_nodup and not facts.separated

    def test_loop_over_unseparated_source_unknown(self):
        x = fresh_var("x")
        source = step(Axis.DESCENDANT, "a", CVar(ext()))
        loop = CFor(x, None, source, None, step(Axis.CHILD, "b", CVar(x)))
        assert sequence_facts(loop) == UNKNOWN

    def test_loop_with_unconfined_body_unknown(self):
        x = fresh_var("x")
        other = ext("other")
        source = step(Axis.CHILD, "a", CVar(ext()))
        loop = CFor(x, None, source, None,
                    step(Axis.CHILD, "b", CVar(other)))
        assert sequence_facts(loop) == UNKNOWN

    def test_singleton_source_passes_body_facts(self):
        x = fresh_var("x")
        loop = CFor(x, None, CVar(ext()), None,
                    step(Axis.DESCENDANT, "b", CVar(x)))
        facts = sequence_facts(loop)
        assert facts.ord_nodup


class TestConfinement:
    def test_variable_is_confined_to_itself(self):
        x = fresh_var("x")
        assert confined_to_subtree(CVar(x), frozenset({x}))
        assert not confined_to_subtree(CVar(fresh_var("y")), frozenset({x}))

    def test_downward_steps_confined(self):
        x = fresh_var("x")
        expr = step(Axis.DESCENDANT, "a", step(Axis.CHILD, "b", CVar(x)))
        assert confined_to_subtree(expr, frozenset({x}))

    def test_parent_step_not_confined(self):
        x = fresh_var("x")
        expr = step(Axis.PARENT, "a", CVar(x))
        assert not confined_to_subtree(expr, frozenset({x}))

    def test_nested_loop_confined(self):
        x, y = fresh_var("x"), fresh_var("y")
        inner = CFor(y, None, step(Axis.CHILD, "a", CVar(x)), None,
                     step(Axis.CHILD, "b", CVar(y)))
        assert confined_to_subtree(inner, frozenset({x}))

    def test_let_of_confined_value(self):
        x, y = fresh_var("x"), fresh_var("y")
        expr = CLet(y, step(Axis.CHILD, "a", CVar(x)),
                    step(Axis.CHILD, "b", CVar(y)))
        assert confined_to_subtree(expr, frozenset({x}))

    def test_let_of_unconfined_value(self):
        x, y = fresh_var("x"), fresh_var("y")
        expr = CLet(y, CVar(ext()), step(Axis.CHILD, "b", CVar(y)))
        assert not confined_to_subtree(expr, frozenset({x}))

    def test_if_requires_both_branches(self):
        x = fresh_var("x")
        confined = step(Axis.CHILD, "a", CVar(x))
        unconfined = CVar(ext())
        cond = CLit(True)
        assert confined_to_subtree(CIf(cond, confined, confined),
                                   frozenset({x}))
        assert not confined_to_subtree(CIf(cond, confined, unconfined),
                                       frozenset({x}))

    def test_literals_not_confined(self):
        x = fresh_var("x")
        assert not confined_to_subtree(CLit(1), frozenset({x}))
        assert confined_to_subtree(CEmpty(), frozenset({x}))

    def test_sequence_confined_when_all_items_are(self):
        x = fresh_var("x")
        good = CSeq([step(Axis.CHILD, "a", CVar(x)), CVar(x)])
        bad = CSeq([CVar(x), CVar(ext())])
        assert confined_to_subtree(good, frozenset({x}))
        assert not confined_to_subtree(bad, frozenset({x}))
