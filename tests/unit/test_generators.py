"""The MemBeR-style and XMark-style document generators."""

import pytest

from repro.data import (XMARK_CHILD_DESCENDANT_PAIRS,
                        approximate_size_bytes, deep_member_document,
                        member_document, tag_name, xmark_document)
from repro.xmltree.node import ElementNode


class TestMemBeR:
    def test_node_count_exact(self):
        doc = member_document(500, depth=4, tag_count=10, seed=1)
        elements = doc.all_elements()
        assert len(elements) == 500

    def test_depth_bounded(self):
        doc = member_document(2000, depth=4, tag_count=10, seed=2)
        max_level = max(node.level for node in doc.all_elements())
        assert max_level <= 4

    def test_tags_within_range(self):
        doc = member_document(500, depth=4, tag_count=7, seed=3)
        tags = {node.name for node in doc.all_elements()}
        allowed = {tag_name(index) for index in range(1, 8)}
        assert tags <= allowed

    def test_tags_roughly_uniform(self):
        doc = member_document(5000, depth=6, tag_count=5, seed=4)
        counts = {tag: len(doc.stream(tag))
                  for tag in (tag_name(i) for i in range(1, 6))}
        expected = 5000 / 5
        for tag, count in counts.items():
            assert 0.6 * expected < count < 1.4 * expected, (tag, count)

    def test_deterministic(self):
        doc1 = member_document(300, seed=42)
        doc2 = member_document(300, seed=42)
        assert [n.name for n in doc1.all_elements()] == \
            [n.name for n in doc2.all_elements()]

    def test_different_seeds_differ(self):
        doc1 = member_document(300, seed=1)
        doc2 = member_document(300, seed=2)
        assert [n.name for n in doc1.all_elements()] != \
            [n.name for n in doc2.all_elements()]

    def test_root_is_t01(self):
        doc = member_document(50, seed=5)
        assert doc.root.document_element.name == tag_name(1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            member_document(0)

    def test_size_estimate_positive(self):
        doc = member_document(100, seed=6)
        assert approximate_size_bytes(doc) > 100


class TestDeepMemBeR:
    def test_single_tag(self):
        doc = deep_member_document(500, 10)
        assert all(node.name == "t1" for node in doc.all_elements())

    def test_node_count(self):
        doc = deep_member_document(500, 10)
        assert len(doc.all_elements()) == 500

    def test_reaches_depth(self):
        doc = deep_member_document(2000, 12)
        assert max(node.level for node in doc.all_elements()) >= 12

    def test_first_child_chain_long_enough(self):
        """(/t1[1])^k needs a first-child chain of length ≥ depth."""
        doc = deep_member_document(2000, 12)
        node = doc.root.document_element
        length = 1
        while node.children:
            node = node.children[0]
            length += 1
        assert length >= 12

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            deep_member_document(0)


class TestXMark:
    def test_schema_shape(self):
        doc = xmark_document(30, seed=1)
        site = doc.root.document_element
        assert site.name == "site"
        top = [child.name for child in site.children]
        assert top == ["regions", "categories", "catgraph", "people",
                       "open_auctions", "closed_auctions"]

    def test_person_count(self):
        doc = xmark_document(30, seed=2)
        assert len(doc.stream("person")) == 30

    def test_person_structure(self):
        doc = xmark_document(50, seed=3)
        for person in doc.stream("person"):
            names = [child.name for child in person.children]
            assert names[0] == "name"
            assert person.get_attribute("id") is not None

    def test_email_probability_extremes(self):
        all_email = xmark_document(30, seed=4, email_probability=1.0)
        assert len(all_email.stream("emailaddress")) == 30
        no_email = xmark_document(30, seed=4, email_probability=0.0)
        assert len(no_email.stream("emailaddress")) == 0

    def test_items_scale(self):
        doc = xmark_document(30, seed=5)
        assert len(doc.stream("item")) == 60

    def test_deterministic(self):
        doc1 = xmark_document(20, seed=9)
        doc2 = xmark_document(20, seed=9)
        assert [n.pre for n in doc1.stream("interest")] == \
            [n.pre for n in doc2.stream("interest")]

    def test_figure6_pairs_equivalent(self):
        from repro import Engine
        engine = Engine(xmark_document(40, seed=6))
        for name, child_form, descendant_form in XMARK_CHILD_DESCENDANT_PAIRS:
            child_result = [n.pre for n in engine.run(child_form)]
            descendant_result = [n.pre for n in engine.run(descendant_form)]
            assert child_result == descendant_result, name
            assert child_result, f"{name} returned nothing"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            xmark_document(0)
