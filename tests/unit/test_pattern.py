"""Tree pattern structure, parsing, printing and merge operations."""

import pytest

from repro.pattern import (PatternError, PatternPath, PatternStep,
                           TreePattern, parse_pattern, single_step_pattern)
from repro.xmltree.axes import Axis
from repro.xmltree.nodetest import NameTest


PAPER_EXAMPLE = "IN#x/descendant::a/child::c{y}[@id]/child::d{z}"


class TestParsing:
    def test_paper_section_41_example(self):
        pattern = parse_pattern(PAPER_EXAMPLE)
        assert pattern.input_field == "x"
        steps = pattern.path.steps
        assert [step.axis for step in steps] == [
            Axis.DESCENDANT, Axis.CHILD, Axis.CHILD]
        assert steps[1].output_field == "y"
        assert steps[2].output_field == "z"
        assert len(steps[1].predicates) == 1
        branch = steps[1].predicates[0]
        assert branch.steps[0].axis is Axis.ATTRIBUTE
        assert branch.steps[0].test == NameTest("id")

    def test_round_trip(self):
        for text in (
                "IN#dot/descendant::person[child::emailaddress]/child::name{out}",
                PAPER_EXAMPLE,
                "IN#a/child::b{o}",
                "IN#a/descendant::b[child::c[child::d]]{o}",
        ):
            pattern = parse_pattern(text)
            assert parse_pattern(pattern.to_string()).to_string() \
                == pattern.to_string()

    def test_abbreviated_child_step(self):
        pattern = parse_pattern("IN#dot/person{o}")
        assert pattern.path.steps[0].axis is Axis.CHILD

    def test_axis_aliases(self):
        pattern = parse_pattern("IN#dot/desc::a{o}")
        assert pattern.path.steps[0].axis is Axis.DESCENDANT

    def test_kind_test(self):
        pattern = parse_pattern("IN#dot/dos::node(){o}")
        assert pattern.path.steps[0].test.to_string() == "node()"

    @pytest.mark.parametrize("bad", [
        "dot/child::a",       # missing IN#
        "IN#dot",             # no path
        "IN#dot/child::a[",   # unterminated predicate
        "IN#dot/child::a{x",  # unterminated output
        "IN#dot/side::a",     # unknown axis
    ])
    def test_malformed(self, bad):
        with pytest.raises((PatternError, ValueError)):
            parse_pattern(bad)


class TestStructure:
    def test_extraction_point(self):
        pattern = parse_pattern(PAPER_EXAMPLE)
        assert pattern.extraction_point.test == NameTest("d")

    def test_output_fields_in_lexical_order(self):
        pattern = parse_pattern(PAPER_EXAMPLE)
        assert pattern.output_fields() == ["y", "z"]

    def test_single_output_check(self):
        single = parse_pattern("IN#d/descendant::a/child::b{o}")
        assert single.is_single_output_at_extraction_point()
        multi = parse_pattern(PAPER_EXAMPLE)
        assert not multi.is_single_output_at_extraction_point()
        inner = parse_pattern("IN#d/descendant::a{o}/child::b")
        assert not inner.is_single_output_at_extraction_point()

    def test_is_downward(self):
        assert parse_pattern("IN#d/descendant::a/child::b{o}").is_downward()
        assert parse_pattern("IN#d/child::a[@id]{o}").is_downward()
        not_down = TreePattern("d", PatternPath((PatternStep(
            Axis.PARENT, NameTest("a"), (), "o"),)))
        assert not not_down.is_downward()


class TestMerging:
    def test_append_path_rule_d(self):
        inner = parse_pattern(
            "IN#in/descendant::person[child::emailaddress]{dot}")
        outer = parse_pattern("IN#dot/child::name{out}")
        merged = inner.append_path(outer.path, "out")
        assert merged.to_string() == (
            "IN#in/descendant::person[child::emailaddress]/child::name{out}")

    def test_append_multi_step_path(self):
        inner = parse_pattern("IN#in/child::site{a}")
        outer = parse_pattern("IN#a/child::people/child::person{out}")
        merged = inner.append_path(outer.path, "out")
        assert merged.to_string() == (
            "IN#in/child::site/child::people/child::person{out}")

    def test_add_predicates_rule_e(self):
        spine = parse_pattern("IN#in/descendant::person{dot}")
        branch = parse_pattern("IN#dot/child::emailaddress{tmp}")
        merged = spine.add_predicates([branch.path])
        assert merged.to_string() == (
            "IN#in/descendant::person{dot}[child::emailaddress]")
        # output annotations inside branches are stripped
        assert merged.output_fields() == ["dot"]

    def test_single_step_constructor(self):
        pattern = single_step_pattern("dot", Axis.CHILD, NameTest("a"), "o")
        assert pattern.to_string() == "IN#dot/child::a{o}"
        assert pattern.is_single_output_at_extraction_point()

    def test_merge_preserves_immutability(self):
        inner = parse_pattern("IN#in/descendant::person{dot}")
        before = inner.to_string()
        inner.append_path(parse_pattern("IN#dot/child::a{o}").path, "o")
        inner.add_predicates([parse_pattern("IN#dot/child::b{t}").path])
        assert inner.to_string() == before
