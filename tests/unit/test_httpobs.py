"""The live observability endpoint (``repro.serve.httpobs``): routes,
formats, health semantics, and validator round-trips over both service
shapes (thread-pool :class:`QueryService` and inline-transport
:class:`ClusterService`).
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.data import xmark_document
from repro.serve import (DocumentCatalog, ObservabilityServer,
                         QueryRequest, QueryService)
from repro.serve.cluster import ClusterService
from repro.trace import (FlightRecorder, Tracer, validate_chrome_trace,
                         validate_prometheus)

SITE_XML = ("<site><people>"
            "<person><name>John</name><emailaddress>j@x</emailaddress>"
            "</person><person><name>Mary</name></person>"
            "</people></site>")
QUERY = "$input//person[emailaddress]/name"


def get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.headers.get("Content-Type"), \
            response.read().decode("utf-8")


def get_error(url):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(url, timeout=10)
    err = excinfo.value
    return err.code, json.loads(err.read().decode("utf-8"))


@pytest.fixture()
def service():
    catalog = DocumentCatalog()
    catalog.add_xml("site", SITE_XML)
    service = QueryService(catalog, workers=2, tracer=Tracer(),
                           flight_recorder=FlightRecorder())
    try:
        yield service
    finally:
        service.close()


@pytest.fixture()
def observed(service):
    for _ in range(3):
        response = service.submit(
            QueryRequest(document="site", query=QUERY)).response(
                timeout=30)
        assert response.error is None
    with ObservabilityServer(service) as obs:
        yield obs


class TestRoutes:
    def test_index_lists_endpoints(self, observed):
        status, content_type, body = get(observed.url + "/")
        assert status == 200
        assert "application/json" in content_type
        assert "/metrics" in json.loads(body)["endpoints"]

    def test_unknown_route_is_404(self, observed):
        code, payload = get_error(observed.url + "/nope")
        assert code == 404
        assert "error" in payload

    def test_metrics_passes_validator(self, observed):
        status, content_type, body = get(observed.url + "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        validate_prometheus(body)
        assert "repro_requests_completed_total 3" in body
        assert "repro_request_latency_seconds_bucket" in body

    def test_healthz_ok(self, observed):
        status, _, body = get(observed.url + "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "healthy"
        assert payload["counters"]["completed"] == 3
        (doc,) = payload["documents"]["documents"]
        assert doc["document"] == "site"

    def test_flight_snapshot(self, observed):
        status, _, body = get(observed.url + "/flight")
        payload = json.loads(body)
        assert status == 200
        assert payload["recorded"] == 3
        assert payload["recent"]

    def test_trace_by_id_json_and_chrome(self, observed):
        _, _, body = get(observed.url + "/flight")
        trace_id = json.loads(body)["recent"][0]["trace"]["trace_id"]
        status, _, body = get(observed.url + f"/traces/{trace_id}")
        assert status == 200
        assert json.loads(body)["trace_id"] == trace_id
        status, _, body = get(
            observed.url + f"/traces/{trace_id}?format=chrome")
        assert status == 200
        chrome = json.loads(body)
        validate_chrome_trace(chrome)

    def test_trace_unknown_id_is_404(self, observed):
        code, payload = get_error(observed.url + "/traces/ffffffff")
        assert code == 404
        assert "not retained" in payload["error"]


class TestUntracedService:
    def test_flight_404_without_recorder(self):
        catalog = DocumentCatalog()
        catalog.add_xml("site", SITE_XML)
        service = QueryService(catalog, workers=1)
        try:
            with ObservabilityServer(service) as obs:
                code, payload = get_error(obs.url + "/flight")
                assert code == 404
                code, _payload = get_error(obs.url + "/traces/00000001")
                assert code == 404
                # /metrics still works without a tracer.
                _status, _ctype, body = get(obs.url + "/metrics")
                validate_prometheus(body)
        finally:
            service.close()


class TestClusterEndpoint:
    def test_cluster_metrics_and_healthz(self, tmp_path):
        catalog = DocumentCatalog()
        catalog.add_document("xmark", xmark_document(20, seed=5))
        service = ClusterService.from_catalog(
            catalog, directory=str(tmp_path), shard_count=2,
            transport="inline", tracer=Tracer(),
            flight_recorder=FlightRecorder())
        try:
            response = service.submit(QueryRequest(
                document="xmark",
                query="$input//person/name")).response(timeout=60)
            assert response.error is None
            with ObservabilityServer(service) as obs:
                _status, _ctype, metrics = get(obs.url + "/metrics")
                validate_prometheus(metrics)
                assert "repro_cluster_worker_up" in metrics
                assert "repro_cluster_worker_busy_seconds_total" \
                    in metrics
                assert "repro_cluster_shard_latency_seconds_bucket" \
                    in metrics
                status, _, body = get(obs.url + "/healthz")
                payload = json.loads(body)
                assert status == 200
                assert payload["status"] == "healthy"
                assert all(worker["alive"]
                           for worker in payload["workers"])
                assert {worker["index"]
                        for worker in payload["workers"]} \
                    == set(range(len(payload["workers"])))
        finally:
            service.close()

    def test_healthz_degrades_on_dead_worker(self, tmp_path):
        catalog = DocumentCatalog()
        catalog.add_document("xmark", xmark_document(20, seed=5))
        service = ClusterService.from_catalog(
            catalog, directory=str(tmp_path), shard_count=2,
            transport="inline")
        try:
            with ObservabilityServer(service) as obs:
                # Close one inline transport out from under the
                # coordinator: liveness must go false and /healthz 503.
                service._workers[0]._closed = True
                code, payload = get_error(obs.url + "/healthz")
                assert code == 503
                assert payload["status"] == "degraded"
                assert payload["workers"][0]["alive"] is False
        finally:
            service.close()
