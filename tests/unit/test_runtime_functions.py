"""Runtime helpers (EBV, comparisons, arithmetic) and built-in functions."""

import pytest

from repro.algebra.functions import call_function
from repro.algebra.runtime import (DynamicError, arithmetic, atomize,
                                   effective_boolean_value, general_compare,
                                   numeric_value, string_value)
from repro.xmltree import IndexedDocument

DOC = IndexedDocument.from_string("<a><b>1</b><b>2</b><c>xyz</c></a>")
B1, B2 = DOC.stream("b")
C = DOC.stream("c")[0]


class TestEBV:
    def test_empty_is_false(self):
        assert effective_boolean_value([]) is False

    def test_node_first_is_true(self):
        assert effective_boolean_value([B1]) is True
        assert effective_boolean_value([B1, B2]) is True

    def test_boolean_singleton(self):
        assert effective_boolean_value([True]) is True
        assert effective_boolean_value([False]) is False

    def test_numeric_singleton(self):
        assert effective_boolean_value([0]) is False
        assert effective_boolean_value([3]) is True
        assert effective_boolean_value([0.0]) is False

    def test_string_singleton(self):
        assert effective_boolean_value([""]) is False
        assert effective_boolean_value(["x"]) is True

    def test_multi_atomic_raises(self):
        with pytest.raises(DynamicError):
            effective_boolean_value([1, 2])


class TestComparisons:
    def test_existential(self):
        assert general_compare("=", [1, 2, 3], [3, 9])
        assert not general_compare("=", [1, 2], [3, 9])

    def test_node_atomization(self):
        assert general_compare("=", [B1], ["1"])
        assert general_compare("=", [B1, B2], ["2"])

    def test_numeric_coercion(self):
        assert general_compare("=", [B1], [1])
        assert general_compare("<", [B1], [2])

    def test_uncomparable_pairs_skipped(self):
        assert not general_compare("=", [C], [1])  # "xyz" vs number

    def test_string_comparison(self):
        assert general_compare(">", ["b"], ["a"])

    def test_empty_operand(self):
        assert not general_compare("=", [], [1])
        assert not general_compare("!=", [1], [])


class TestArithmetic:
    def test_basic(self):
        assert arithmetic("+", [2], [3]) == [5]
        assert arithmetic("-", [2], [3]) == [-1]
        assert arithmetic("*", [2], [3]) == [6]
        assert arithmetic("div", [7], [2]) == [3.5]
        assert arithmetic("div", [6], [2]) == [3]
        assert arithmetic("mod", [7], [2]) == [1]

    def test_empty_propagates(self):
        assert arithmetic("+", [], [3]) == []
        assert arithmetic("+", [3], []) == []

    def test_node_operands_atomized(self):
        assert arithmetic("+", [B1], [B2]) == [3]

    def test_division_by_zero(self):
        with pytest.raises(DynamicError):
            arithmetic("div", [1], [0])

    def test_non_numeric_raises(self):
        with pytest.raises(DynamicError):
            arithmetic("+", [C], [1])

    def test_multi_item_raises(self):
        with pytest.raises(DynamicError):
            arithmetic("+", [1, 2], [1])


class TestHelpers:
    def test_atomize(self):
        assert atomize([B1, "x", 3]) == ["1", "x", 3]

    def test_numeric_value(self):
        assert numeric_value([B1], "t") == 1
        assert numeric_value(["2.5"], "t") == 2.5
        assert numeric_value([], "t") is None

    def test_string_value(self):
        assert string_value([]) == ""
        assert string_value([B1]) == "1"
        assert string_value([True]) == "true"
        assert string_value([3]) == "3"


class TestFunctions:
    def test_count(self):
        assert call_function("fn:count", [[1, 2, 3]]) == [3]
        assert call_function("fn:count", [[]]) == [0]

    def test_boolean_not(self):
        assert call_function("fn:boolean", [[B1]]) == [True]
        assert call_function("fn:not", [[]]) == [True]

    def test_exists_empty(self):
        assert call_function("fn:exists", [[1]]) == [True]
        assert call_function("fn:empty", [[1]]) == [False]

    def test_root(self):
        assert call_function("fn:root", [[B1]]) == [DOC.root]
        assert call_function("fn:root", [[B1, B2]]) == [DOC.root]

    def test_string_functions(self):
        assert call_function("fn:string", [[B1]]) == ["1"]
        assert call_function("fn:concat", [["a"], ["b"], ["c"]]) == ["abc"]
        assert call_function("fn:contains", [["hello"], ["ell"]]) == [True]
        assert call_function("fn:starts-with", [["hello"], ["he"]]) == [True]
        assert call_function("fn:string-length", [["abc"]]) == [3]

    def test_name(self):
        assert call_function("fn:name", [[B1]]) == ["b"]
        assert call_function("fn:name", [[]]) == [""]

    def test_number(self):
        assert call_function("fn:number", [[B1]]) == [1]
        assert call_function("fn:number", [[]]) == []

    def test_aggregates(self):
        assert call_function("fn:sum", [[1, 2, 3]]) == [6]
        assert call_function("fn:min", [[3, 1, 2]]) == [1]
        assert call_function("fn:max", [[3, 1, 2]]) == [3]
        assert call_function("fn:avg", [[2, 4]]) == [3.0]
        assert call_function("fn:sum", [[]]) == [0]
        assert call_function("fn:min", [[]]) == []

    def test_distinct_values(self):
        assert call_function("fn:distinct-values", [[1, 2, 1, "1"]]) \
            == [1, 2, "1"]

    def test_reverse_subsequence(self):
        assert call_function("fn:reverse", [[1, 2, 3]]) == [3, 2, 1]
        assert call_function("fn:subsequence", [[1, 2, 3, 4], [2], [2]]) \
            == [2, 3]
        assert call_function("fn:subsequence", [[1, 2, 3], [2]]) == [2, 3]

    def test_cardinality_checks(self):
        assert call_function("fn:zero-or-one", [[1]]) == [1]
        assert call_function("fn:exactly-one", [[1]]) == [1]
        with pytest.raises(DynamicError):
            call_function("fn:zero-or-one", [[1, 2]])
        with pytest.raises(DynamicError):
            call_function("fn:exactly-one", [[]])

    def test_op_to(self):
        assert call_function("op:to", [[1], [4]]) == [1, 2, 3, 4]
        assert call_function("op:to", [[3], [1]]) == []

    def test_op_union(self):
        assert call_function("op:union", [[B2, B1], [B1]]) == [B1, B2]
        with pytest.raises(DynamicError):
            call_function("op:union", [[1], [2]])

    def test_unknown_function(self):
        with pytest.raises(DynamicError):
            call_function("fn:frobnicate", [[]])
