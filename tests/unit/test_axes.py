"""Axis navigation: each axis against its set-theoretic definition."""

import pytest

from repro.xmltree import (ANY_NODE, Axis, NameTest, axis_from_string,
                           axis_nodes, parse_xml, step)
from repro.xmltree.node import AttributeNode

DOC = parse_xml(
    '<a id="r"><b><d/><e>x</e></b><c><f/><g><h/></g></c></a>')
A = DOC.document_element
B, C = A.children
D, E = B.children
F, G = C.children
H = G.children[0]


def names(nodes):
    return [node.name if node.name is not None else "#" + node.kind
            for node in nodes]


class TestForwardAxes:
    def test_child(self):
        assert list(axis_nodes(A, Axis.CHILD)) == [B, C]
        assert list(axis_nodes(H, Axis.CHILD)) == []

    def test_descendant(self):
        assert names(axis_nodes(A, Axis.DESCENDANT)) == [
            "b", "d", "e", "#text", "c", "f", "g", "h"]

    def test_descendant_or_self(self):
        result = list(axis_nodes(C, Axis.DESCENDANT_OR_SELF))
        assert result[0] is C
        assert names(result) == ["c", "f", "g", "h"]

    def test_self(self):
        assert list(axis_nodes(B, Axis.SELF)) == [B]

    def test_attribute(self):
        attrs = list(axis_nodes(A, Axis.ATTRIBUTE))
        assert len(attrs) == 1
        assert isinstance(attrs[0], AttributeNode)
        assert attrs[0].name == "id"
        assert list(axis_nodes(B, Axis.ATTRIBUTE)) == []

    def test_following_sibling(self):
        assert list(axis_nodes(B, Axis.FOLLOWING_SIBLING)) == [C]
        assert list(axis_nodes(C, Axis.FOLLOWING_SIBLING)) == []

    def test_following(self):
        # after B's subtree, excluding ancestors: c, f, g, h
        assert names(axis_nodes(B, Axis.FOLLOWING)) == ["c", "f", "g", "h"]
        assert names(axis_nodes(E, Axis.FOLLOWING)) == ["c", "f", "g", "h"]

    def test_forward_axes_in_document_order(self):
        for axis in (Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF,
                     Axis.FOLLOWING_SIBLING, Axis.FOLLOWING):
            result = list(axis_nodes(A, axis)) or list(axis_nodes(B, axis))
            pres = [node.pre for node in result]
            assert pres == sorted(pres), axis


class TestReverseAxes:
    def test_parent(self):
        assert list(axis_nodes(B, Axis.PARENT)) == [A]
        assert list(axis_nodes(A, Axis.PARENT)) == [DOC]
        assert list(axis_nodes(DOC, Axis.PARENT)) == []

    def test_ancestor(self):
        assert list(axis_nodes(H, Axis.ANCESTOR)) == [G, C, A, DOC]

    def test_ancestor_or_self(self):
        assert list(axis_nodes(H, Axis.ANCESTOR_OR_SELF)) == [H, G, C, A, DOC]

    def test_preceding_sibling(self):
        assert list(axis_nodes(C, Axis.PRECEDING_SIBLING)) == [B]
        # reverse document order
        assert list(axis_nodes(E, Axis.PRECEDING_SIBLING)) == [D]

    def test_preceding(self):
        # nodes entirely before C, excluding ancestors: b, d, e, text
        result = list(axis_nodes(C, Axis.PRECEDING))
        pres = [node.pre for node in result]
        assert pres == sorted(pres, reverse=True)
        assert set(names(result)) == {"b", "d", "e", "#text"}

    def test_reverse_flags(self):
        assert Axis.PARENT.is_reverse
        assert Axis.ANCESTOR.is_reverse
        assert not Axis.CHILD.is_reverse
        assert Axis.CHILD.is_forward


class TestStep:
    def test_step_filters_by_name(self):
        doc = parse_xml("<a><b/><c/><b/></a>")
        root = doc.document_element
        result = step(root, Axis.CHILD, NameTest("b"))
        assert names(result) == ["b", "b"]

    def test_step_any_node(self):
        result = step(B, Axis.CHILD, ANY_NODE)
        assert len(result) == 2

    def test_attribute_principal_kind(self):
        result = step(A, Axis.ATTRIBUTE, NameTest("id"))
        assert len(result) == 1
        # name tests on non-attribute axes never match attributes
        assert step(A, Axis.CHILD, NameTest("id")) == []

    def test_downward_classification(self):
        assert Axis.CHILD.is_downward
        assert Axis.DESCENDANT.is_downward
        assert Axis.ATTRIBUTE.is_downward
        assert not Axis.PARENT.is_downward
        assert not Axis.FOLLOWING.is_downward


class TestAxisParsing:
    def test_from_string(self):
        assert axis_from_string("child") is Axis.CHILD
        assert axis_from_string("descendant-or-self") is Axis.DESCENDANT_OR_SELF

    def test_unknown_axis(self):
        with pytest.raises(ValueError):
            axis_from_string("sideways")
