"""The Section 7 future-work extensions: streaming XPath, positional
tree patterns, and the cost model."""

import pytest

from repro import Engine
from repro.algebra import TupleTreePattern, walk_plan
from repro.algebra.optimizer import OptimizerOptions
from repro.data import deep_member_document, member_document, xmark_document
from repro.pattern import parse_pattern
from repro.physical import (CostBasedChooser, CostModel, NLJoin,
                            StreamingXPath, make_algorithm)
from repro.xmltree import IndexedDocument

DOC = IndexedDocument.from_string(
    '<site><people>'
    '<person id="p1"><name>A</name><emailaddress/>'
    '<profile><interest/><interest/></profile></person>'
    '<person id="p2"><name>B</name><profile><interest/></profile></person>'
    '<person id="p3"><name>C</name><emailaddress/></person>'
    '</people></site>')

NESTED = IndexedDocument.from_string(
    "<doc><a><b><a><c/></a></b><c/></a><a><c/></a></doc>")


class TestStreamingXPath:
    STREAM = StreamingXPath()
    NL = NLJoin()

    PATTERNS = [
        "IN#d/descendant::person{o}",
        "IN#d/descendant::person[child::emailaddress]{o}",
        "IN#d/descendant::person[child::profile[child::interest]]{o}",
        "IN#d/child::site/child::people/child::person/child::name{o}",
        "IN#d/descendant::person/@id{o}",
        "IN#d/descendant::person[@id]/child::name{o}",
        "IN#d/descendant-or-self::node()/child::person{o}",
    ]

    @pytest.mark.parametrize("pattern_text", PATTERNS)
    def test_agrees_with_navigation(self, pattern_text):
        path = parse_pattern(pattern_text).path
        expected = self.NL.match_single(DOC, [DOC.root], path)
        assert self.STREAM.match_single(DOC, [DOC.root], path) == expected

    @pytest.mark.parametrize("pattern_text", [
        "IN#d/descendant::a{o}",
        "IN#d/descendant::a[child::c]{o}",
        "IN#d/descendant::a[child::b[child::a]]{o}",
        "IN#d/descendant::b/descendant::c{o}",
    ])
    def test_agrees_on_nested_elements(self, pattern_text):
        path = parse_pattern(pattern_text).path
        expected = self.NL.match_single(NESTED, [NESTED.root], path)
        assert self.STREAM.match_single(NESTED, [NESTED.root], path) \
            == expected

    def test_non_root_context(self):
        people = DOC.stream("people")[0]
        path = parse_pattern("IN#d/child::person[child::emailaddress]{o}").path
        expected = self.NL.match_single(DOC, [people], path)
        assert self.STREAM.match_single(DOC, [people], path) == expected

    def test_positional_falls_back(self):
        path = parse_pattern("IN#d/descendant::person[2]{o}").path
        expected = self.NL.match_single(DOC, [DOC.root], path)
        assert self.STREAM.match_single(DOC, [DOC.root], path) == expected

    def test_strategy_registration(self):
        assert make_algorithm("streaming").name == "streaming"

    def test_engine_integration(self):
        engine = Engine(DOC)
        reference = engine.run("$input//person[emailaddress]/name",
                               strategy="nljoin")
        streamed = engine.run("$input//person[emailaddress]/name",
                              strategy="streaming")
        assert [n.pre for n in streamed] == [n.pre for n in reference]


class TestPositionalPatterns:
    def engine(self, document, positional=True):
        return Engine(document, optimizer_options=OptimizerOptions(
            enable_positional=positional))

    def test_pattern_parse_print_round_trip(self):
        pattern = parse_pattern("IN#d/descendant::a/child::b[child::c][2]{o}")
        step = pattern.path.steps[-1]
        assert step.position == 2
        assert len(step.predicates) == 1
        assert parse_pattern(pattern.to_string()).to_string() \
            == pattern.to_string()

    def test_rule_g_folds_position(self):
        engine = self.engine(DOC)
        compiled = engine.compile("$input//person[2]/name")
        assert compiled.tree_pattern_count() == 1
        (pattern,) = compiled.tree_patterns()
        assert "[2]" in pattern.to_string()

    def test_disabled_by_default(self):
        engine = Engine(DOC)
        compiled = engine.compile("$input//person[2]/name")
        assert compiled.tree_pattern_count() > 1

    def test_results_match_reference(self):
        engine = self.engine(DOC)
        for query in ("$input//person[1]/name",
                      "$input//person[2]/name",
                      "$input//person[3]/@id",
                      "$input//person[9]/name",
                      "$input/site/people/person[emailaddress][2]/name",
                      "$input//profile/interest[1]"):
            reference = [n.pre for n in engine.run(query, optimize=False)]
            for strategy in ("nljoin", "twigjoin", "scjoin", "streaming"):
                got = [n.pre for n in engine.run(query, strategy=strategy)]
                assert got == reference, (query, strategy)

    def test_position_counts_per_context(self):
        """child::interest[1] must pick the first interest *per profile*."""
        engine = self.engine(DOC)
        result = engine.run("$input//profile/interest[1]")
        assert len(result) == 2  # one per profile that has interests

    def test_position_after_predicates(self):
        """person[emailaddress][2] is the 2nd among email-havers."""
        engine = self.engine(DOC)
        result = engine.run(
            '$input//person[emailaddress][2]/@id')
        assert [n.string_value() for n in result] == ["p3"]

    @pytest.mark.parametrize("strategy", ["nljoin", "twigjoin", "scjoin"])
    def test_direct_pattern_evaluation(self, strategy):
        algorithm = make_algorithm(strategy)
        path = parse_pattern("IN#d/descendant::person[2]{o}").path
        result = algorithm.match_single(DOC, [DOC.root], path)
        assert [n.get_attribute("id") for n in result] == ["p2"]

    def test_where_filter_not_folded_past_position(self):
        """Regression (found by hypothesis): a ``where`` filter applies
        *after* a positional selection and must not become a predicate
        branch on the positional step (branches filter before the
        position)."""
        doc = member_document(180, depth=5, tag_count=3, seed=100)
        engine = self.engine(doc)
        query = ("for $x in $input//t01[t01]/t01[1] where $x/t01 "
                 "return $x")
        reference = [n.pre for n in engine.run(query, optimize=False)]
        for strategy in ("nljoin", "twigjoin", "scjoin"):
            got = [n.pre for n in engine.run(query, strategy=strategy)]
            assert got == reference, strategy
        # the positional step must not have picked up the where branch
        compiled = engine.compile(query)
        for pattern in compiled.tree_patterns():
            for step in pattern.path.steps:
                if step.position is not None and step.test.to_string() == "t01":
                    assert len(step.predicates) <= 1

    def test_positional_on_member_docs(self):
        doc = member_document(400, depth=5, tag_count=3, seed=3)
        engine = self.engine(doc)
        for query in ("$input/desc::t01/child::t02[1]/child::t03",
                      "$input/desc::t01/desc::t02[2]"):
            reference = [n.pre for n in engine.run(query, optimize=False)]
            for strategy in ("nljoin", "twigjoin", "scjoin"):
                got = [n.pre for n in engine.run(query, strategy=strategy)]
                assert got == reference, (query, strategy)


class TestCostModel:
    def test_estimates_all_algorithms(self):
        model = CostModel(DOC)
        path = parse_pattern("IN#d/descendant::person{o}").path
        estimate = model.estimate([DOC.root], path)
        assert set(estimate.costs) == {"nljoin", "twigjoin", "scjoin",
                                       "streaming"}
        assert all(cost > 0 for cost in estimate.costs.values())

    def test_navigation_wins_on_selective_child_chains(self):
        """The Section 5.3 regime: a child-only step from a huge-region
        context with tiny fanout — navigation touches a handful of nodes
        while the stream algorithms scan the whole tag stream."""
        deep = deep_member_document(3000, 12)
        model = CostModel(deep)
        path = parse_pattern("IN#d/child::t1[1]{o}").path
        estimate = model.estimate([deep.root], path)
        assert estimate.best() == "nljoin"

    def test_index_algorithms_win_on_rooted_descendant_paths(self):
        doc = member_document(5000, depth=4, tag_count=100, seed=5)
        model = CostModel(doc)
        path = parse_pattern("IN#d/descendant::t01/child::t02{o}").path
        estimate = model.estimate([doc.root], path)
        assert estimate.best() in ("scjoin", "twigjoin")
        assert estimate["scjoin"] < estimate["nljoin"]

    def test_branches_penalize_scjoin(self):
        doc = member_document(5000, depth=4, tag_count=100, seed=5)
        model = CostModel(doc)
        plain = parse_pattern("IN#d/descendant::t01{o}").path
        branchy = parse_pattern(
            "IN#d/descendant::t01[descendant::t02[descendant::t03]]{o}").path
        plain_estimate = model.estimate([doc.root], plain)
        branchy_estimate = model.estimate([doc.root], branchy)
        plain_ratio = plain_estimate["scjoin"] / plain_estimate["twigjoin"]
        branchy_ratio = (branchy_estimate["scjoin"]
                         / branchy_estimate["twigjoin"])
        assert branchy_ratio > plain_ratio

    def test_estimates_scale_with_region(self):
        doc = member_document(5000, depth=4, tag_count=10, seed=6)
        model = CostModel(doc)
        path = parse_pattern("IN#d/descendant::t01{o}").path
        small = doc.all_elements()[-1]
        big = doc.root
        small_estimate = model.estimate([small], path)
        big_estimate = model.estimate([big], path)
        for name in ("scjoin", "streaming"):
            assert small_estimate[name] <= big_estimate[name]

    def test_cost_chooser_correctness(self):
        engine = Engine(xmark_document(40, seed=9))
        for query in ("$input//person[emailaddress]/name",
                      "$input//item[payment]/name",
                      "count($input//bidder)"):
            reference = engine.run(query, strategy="nljoin")
            got = engine.run(query, strategy="cost")
            ref_keys = [getattr(n, "pre", n) for n in reference]
            got_keys = [getattr(n, "pre", n) for n in got]
            assert got_keys == ref_keys, query

    def test_cost_chooser_decisions_recorded(self):
        doc = deep_member_document(2000, 10)
        chooser = CostBasedChooser(doc)
        context = doc.stream("t1")[-1].parent
        path = parse_pattern("IN#d/child::t1{o}").path
        chooser.match_single(doc, [context], path)
        assert chooser.decisions
        assert chooser.decisions[-1] in ("nljoin", "twigjoin", "scjoin",
                                         "streaming")

    def test_model_cached_on_document(self):
        doc = member_document(500, seed=8)
        first = CostBasedChooser(doc)
        path = parse_pattern("IN#d/descendant::t01{o}").path
        first.match_single(doc, [doc.root], path)
        second = CostBasedChooser(doc)
        second.match_single(doc, [doc.root], path)
        assert second.model_for(doc) is first.model_for(doc)
