"""Shared fixtures: sample documents and engines."""

from __future__ import annotations

import pytest

from repro import Engine, IndexedDocument
from repro.data import member_document, xmark_document

PEOPLE_XML = """<site><people>
<person id="p1"><name>John</name><emailaddress>j@x</emailaddress>
<profile><interest category="art"/><interest category="music"/></profile></person>
<person id="p2"><name>Mary</name>
<profile><interest category="music"/></profile></person>
<person id="p3"><name>John</name><emailaddress>j2@x</emailaddress></person>
<person id="p4"><name>Ada</name><emailaddress>ada@x</emailaddress>
<profile/></person>
</people></site>"""

NESTED_XML = """<doc>
<a id="1"><b><a id="2"><c>x</c></a></b><c>y</c></a>
<a id="3"><c>z</c></a>
</doc>""".replace("\n", "")

MIXED_XML = ("<r><person><name>outer</name><person><name>inner</name>"
             "</person><name>outer2</name></person></r>")


@pytest.fixture(scope="session")
def people_doc() -> IndexedDocument:
    return IndexedDocument.from_string(PEOPLE_XML)


@pytest.fixture(scope="session")
def people_engine(people_doc) -> Engine:
    return Engine(people_doc)


@pytest.fixture(scope="session")
def nested_doc() -> IndexedDocument:
    return IndexedDocument.from_string(NESTED_XML)


@pytest.fixture(scope="session")
def nested_engine(nested_doc) -> Engine:
    return Engine(nested_doc)


@pytest.fixture(scope="session")
def mixed_engine() -> Engine:
    return Engine.from_xml(MIXED_XML)


@pytest.fixture(scope="session")
def small_member_doc() -> IndexedDocument:
    return member_document(600, depth=5, tag_count=4, seed=7)


@pytest.fixture(scope="session")
def small_xmark_doc() -> IndexedDocument:
    return xmark_document(40, seed=11)


def string_values(sequence):
    """Helper: render a result sequence for comparisons."""
    out = []
    for item in sequence:
        if hasattr(item, "string_value"):
            out.append(item.string_value())
        else:
            out.append(item)
    return out


def pres(sequence):
    """Helper: node identities (pre numbers) of a result sequence."""
    return [item.pre for item in sequence]
