"""Fault injection at the cluster coordinator sites and in workers.

The contract extends :mod:`tests.chaos.test_chaos_serve` across the
process boundary:

* faults at ``cluster.dispatch`` / ``cluster.gather`` produce **typed**
  failures (or, with ``allow_partial=True``, a degraded merged answer
  flagged ``partial=True``) — never a bare error, never a corrupt
  merge;
* chaos shipped to worker processes is **deterministic per worker**:
  seed ``base + worker_index`` (:func:`repro.guard.worker_seed`), so a
  pool-wide fire sequence reproduces from one recorded seed;
* successes under injection stay byte-identical to the fault-free
  baseline.
"""

from __future__ import annotations

import pytest

from repro.data import xmark_document
from repro.guard import (ChaosInjector, ChaosSpec, InjectedFault,
                         ReproError, inject, worker_seed)
from repro.serve import ClusterLayout, ClusterService, QueryRequest

QUERY = "$input//person/name"


@pytest.fixture(scope="module")
def layout(tmp_path_factory):
    directory = tmp_path_factory.mktemp("chaos-cluster")
    return ClusterLayout.build(
        {"xmark": xmark_document(30, seed=5).columns}, str(directory), 3)


@pytest.fixture(scope="module")
def expected(layout):
    with ClusterService(layout, workers=1, transport="inline") as service:
        return [item.pre for item in service.query("xmark", QUERY)]


def run_one(service, timeout=60.0):
    return service.submit(QueryRequest(document="xmark",
                                       query=QUERY)).response(timeout)


@pytest.mark.parametrize("site", ["cluster.dispatch", "cluster.gather"])
def test_coordinator_fault_is_typed(layout, expected, site):
    with ClusterService(layout, workers=2, transport="inline") as service:
        with inject(ChaosSpec(site=site, rate=1.0), seed=3):
            response = run_one(service)
        assert response.error is not None
        assert isinstance(response.error, ReproError)
        assert response.error.code.startswith("REPRO-")
        # The failure is contained: the next fault-free request answers
        # byte-identically on the same pool.
        assert [item.pre for item in run_one(service).results] == expected


@pytest.mark.parametrize("site", ["cluster.dispatch", "cluster.gather"])
def test_partial_rate_typed_or_identical(layout, expected, site):
    """At rate 0.5 some shards fail, some succeed: every outcome is a
    typed error or the exact baseline answer."""
    with ClusterService(layout, workers=2, transport="inline") as service:
        with inject(ChaosSpec(site=site, rate=0.5), seed=11):
            for _ in range(10):
                response = run_one(service)
                if response.error is not None:
                    assert isinstance(response.error, ReproError)
                else:
                    got = [item.pre for item in response.results]
                    assert got == expected


def test_allow_partial_merges_surviving_shards(layout, expected):
    with ClusterService(layout, workers=2, transport="inline",
                        allow_partial=True) as service:
        saw_partial = False
        with inject(ChaosSpec(site="cluster.gather", rate=0.4), seed=7):
            for _ in range(15):
                response = run_one(service)
                if response.error is not None:
                    assert isinstance(response.error, ReproError)
                    continue
                got = [item.pre for item in response.results]
                if response.partial:
                    saw_partial = True
                    # A correctly ordered subset of the answer (equal
                    # when the lost shard held no matches).
                    assert set(got) <= set(expected)
                    assert got == [pre for pre in expected
                                   if pre in set(got)]
                else:
                    assert got == expected
        assert saw_partial, "rate 0.4 over 15 runs never went partial"
        assert service.cluster_stats().partials >= 1


def test_delay_never_corrupts(layout, expected):
    with ClusterService(layout, workers=2, transport="inline") as service:
        with inject(ChaosSpec(site="cluster.dispatch", action="delay",
                              rate=1.0, delay_seconds=0.01), seed=2):
            response = run_one(service)
        assert response.error is None
        assert [item.pre for item in response.results] == expected


def test_worker_seed_derivation():
    assert worker_seed(100, 0) == 100
    assert worker_seed(100, 3) == 103
    # Distinct workers draw distinct fire sequences from one base seed;
    # the same worker index reproduces its sequence exactly.
    spec = ChaosSpec(site="cluster.dispatch", rate=0.5)

    def fire_sequence(index):
        injector = ChaosInjector(spec, seed=worker_seed(42, index))
        sequence = []
        for _ in range(64):
            try:
                injector.visit("cluster.dispatch")
                sequence.append(False)
            except InjectedFault:
                sequence.append(True)
        return sequence

    assert fire_sequence(0) == fire_sequence(0)
    assert fire_sequence(0) != fire_sequence(1)


def test_worker_process_chaos_is_deterministic(layout):
    """The same (spec, seed) config shipped to real worker processes
    yields the same per-request outcome sequence, run after run."""

    def outcomes():
        service = ClusterService(
            layout, workers=2,
            chaos_specs=(ChaosSpec(site="eval.ttp", rate=0.3),),
            chaos_seed=99)
        try:
            sequence = []
            for _ in range(6):
                response = run_one(service, timeout=60.0)
                if response.error is None:
                    sequence.append("ok")
                else:
                    assert isinstance(response.error, ReproError)
                    sequence.append(response.error.code)
            return sequence
        finally:
            service.close()

    assert outcomes() == outcomes()
