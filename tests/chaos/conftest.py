"""Shared fixtures for the chaos suite: a QE-shaped document and
engines in the two degradation modes."""

from __future__ import annotations

import pytest

from repro import Engine
from repro.data import member_document


@pytest.fixture(scope="session")
def qe_doc():
    """A member-style document (tags t01..t04) sized so every QE query
    has matches but the whole suite stays fast."""
    return member_document(800, depth=6, tag_count=4, seed=11)


@pytest.fixture(scope="session")
def qe_engine(qe_doc) -> Engine:
    """Default engine: graceful fallback enabled (nljoin, then the item
    evaluator)."""
    return Engine(qe_doc)


@pytest.fixture(scope="session")
def strict_engine(qe_doc) -> Engine:
    """Fail-fast engine: injected faults must surface unchanged."""
    return Engine(qe_doc, strict=True)
