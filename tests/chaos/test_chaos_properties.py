"""Property: whatever fires, wherever, graceful fallback never changes
the answer — and strict mode never swallows a fault."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.bench.harness import QE_QUERIES
from repro.guard import ChaosSpec, InjectedFault, inject
from repro.obs import ExecMetrics

from .test_chaos_sites import SITE_STRATEGIES, keys

SITES = sorted(SITE_STRATEGIES)
QUERIES = sorted(QE_QUERIES)


@settings(max_examples=40, deadline=None)
@given(site=st.sampled_from(SITES), name=st.sampled_from(QUERIES),
       rate=st.floats(min_value=0.1, max_value=1.0),
       seed=st.integers(min_value=0, max_value=2**16))
def test_fallback_is_transparent(qe_engine, site, name, rate, seed):
    strategy = SITE_STRATEGIES[site]
    compiled = qe_engine.compile(QE_QUERIES[name])
    baseline = keys(qe_engine.execute(compiled, strategy="nljoin"))
    metrics = ExecMetrics()
    with inject(ChaosSpec(site=site, rate=rate), seed=seed) as injector:
        recovered = qe_engine.execute(compiled, strategy=strategy,
                                      metrics=metrics)
    assert keys(recovered) == baseline
    if not injector.fired(site):
        assert not metrics.fallbacks


@settings(max_examples=40, deadline=None)
@given(site=st.sampled_from(SITES), name=st.sampled_from(QUERIES),
       rate=st.floats(min_value=0.1, max_value=1.0),
       seed=st.integers(min_value=0, max_value=2**16))
def test_strict_never_swallows(strict_engine, site, name, rate, seed):
    strategy = SITE_STRATEGIES[site]
    compiled = strict_engine.compile(QE_QUERIES[name])
    raised = False
    with inject(ChaosSpec(site=site, rate=rate), seed=seed) as injector:
        try:
            strict_engine.execute(compiled, strategy=strategy)
        except InjectedFault:
            raised = True
    assert raised == (injector.fired(site) > 0)
