"""Fault injection at the serve- and storage-layer chaos sites.

The resilience contract (docs/ROBUSTNESS.md) under test, for every new
site × {raise, delay}:

* a request either succeeds **byte-identical** to the fault-free
  baseline, or fails with a **typed** :class:`ReproError`
  (``REPRO-*`` code) — never a bare exception, never a corrupt result,
  never a hang;
* transient faults at ``catalog.open`` leave the entry registered, so
  the next lookup simply retries;
* storage faults at the columnar sites surface as
  :class:`StorageError` naming the failed check.
"""

from __future__ import annotations

import threading

import pytest

from repro import Engine
from repro.guard import ChaosSpec, InjectedFault, ReproError, inject
from repro.serve import (DocumentCatalog, QueryRequest, QueryService,
                         RetryPolicy)
from repro.xmltree.columnar import ColumnarDocument, StorageError

SITE_XML = ("<site><people>"
            "<person><name>John</name><emailaddress>j@x</emailaddress>"
            "</person>"
            "<person><name>Mary</name></person>"
            "</people></site>")

QUERIES = ("$input//person[emailaddress]/name",
           "$input//person/name",
           "$input//people")


def keys(results):
    return [getattr(item, "pre", item) for item in results]


def site_catalog() -> DocumentCatalog:
    catalog = DocumentCatalog()
    catalog.add_xml("site", SITE_XML)
    return catalog


class Gate:
    """Holds a worker mid-execution so followers can coalesce."""

    def __init__(self, engine: Engine, query_text: str) -> None:
        self.started = threading.Event()
        self.release = threading.Event()
        original = engine.execute

        def gated_execute(compiled, *args, **kwargs):
            if compiled.text == query_text:
                self.started.set()
                assert self.release.wait(10), "gate never released"
            return original(compiled, *args, **kwargs)

        engine.execute = gated_execute


@pytest.mark.parametrize("action", ["raise", "delay"])
@pytest.mark.parametrize("site", ["serve.admit", "serve.execute"])
class TestServeSites:
    def test_identical_success_or_typed_error(self, site, action):
        catalog = site_catalog()
        engine = catalog.engine("site")
        baseline = {query: keys(engine.run(query)) for query in QUERIES}
        service = QueryService(catalog, workers=2)
        spec = ChaosSpec(site=site, action=action, rate=0.5,
                         delay_seconds=0.001)
        try:
            with inject(spec, seed=3) as injector:
                for index in range(24):
                    query = QUERIES[index % len(QUERIES)]
                    try:
                        results = service.query("site", query)
                    except ReproError as err:
                        assert err.code.startswith("REPRO-")
                    else:
                        assert keys(results) == baseline[query]
            assert injector.fired(site) > 0
        finally:
            service.close()

    def test_retries_absorb_raises(self, site, action):
        """With the retry policy on, per-attempt faults at a serve
        site never corrupt a result — and (except at admission, which
        is outside the attempt loop) mostly never surface at all."""
        catalog = site_catalog()
        engine = catalog.engine("site")
        baseline = {query: keys(engine.run(query)) for query in QUERIES}
        service = QueryService(
            catalog, workers=2,
            retry_policy=RetryPolicy(base_delay=0.0, max_delay=0.0,
                                     jitter=0.0))
        spec = ChaosSpec(site=site, action=action, rate=0.3,
                         delay_seconds=0.001)
        try:
            with inject(spec, seed=5):
                for index in range(24):
                    query = QUERIES[index % len(QUERIES)]
                    try:
                        results = service.query("site", query)
                    except ReproError as err:
                        assert err.code.startswith("REPRO-")
                    else:
                        assert keys(results) == baseline[query]
        finally:
            service.close()


@pytest.mark.parametrize("action", ["raise", "delay"])
class TestServeWakeSite:
    def test_coalesced_wakeup(self, action):
        """serve.wake fires on a coalesced follower's wake-up path: the
        leader's answer is never affected, and an injected raise
        surfaces to that follower as the typed fault."""
        catalog = site_catalog()
        engine = catalog.engine("site")
        query = QUERIES[0]
        baseline = keys(engine.run(query))
        gate = Gate(engine, query)
        service = QueryService(catalog, workers=1)
        spec = ChaosSpec(site="serve.wake", action=action,
                         delay_seconds=0.001)
        try:
            leader = service.submit(QueryRequest("site", query))
            assert gate.started.wait(10)
            followers = [service.submit(QueryRequest("site", query))
                         for _ in range(3)]
            assert all(f.coalesced for f in followers)
            with inject(spec, seed=1) as injector:
                gate.release.set()
                assert keys(leader.result(timeout=10)) == baseline
                for follower in followers:
                    try:
                        results = follower.result(timeout=10)
                    except InjectedFault as err:
                        assert err.code == "REPRO-CHAOS"
                        assert action == "raise"
                    else:
                        assert keys(results) == baseline
                assert injector.fired("serve.wake") == 3
        finally:
            gate.release.set()
            service.close()


@pytest.mark.parametrize("action", ["raise", "delay"])
class TestCatalogOpenSite:
    def test_transient_fault_keeps_entry(self, action):
        catalog = site_catalog()
        spec = ChaosSpec(site="catalog.open", action=action,
                         delay_seconds=0.001)
        with inject(spec, seed=1) as injector:
            if action == "raise":
                with pytest.raises(InjectedFault) as excinfo:
                    catalog.engine("site")
                assert excinfo.value.code == "REPRO-CHAOS"
            else:
                engine = catalog.engine("site")
                assert keys(engine.run(QUERIES[1]))
            assert injector.fired("catalog.open") > 0
        # A transient fault must not deregister or quarantine: the
        # next lookup retries the load and succeeds.
        assert "site" in catalog
        assert catalog.quarantined_names() == []
        engine = catalog.engine("site")
        assert len(engine.run(QUERIES[1])) == 2


@pytest.mark.parametrize("site,check", [("columnar.read", "mmap"),
                                        ("columnar.checksum", "checksum")])
class TestColumnarSites:
    def saved_index(self, tmp_path):
        engine = Engine.from_xml(SITE_XML)
        path = tmp_path / "site.rpxc"
        engine.document.save(str(path))
        return path, keys(engine.run(QUERIES[1]))

    def test_raise_surfaces_typed_storage_error(self, tmp_path, site,
                                                check):
        path, baseline = self.saved_index(tmp_path)
        with inject(ChaosSpec(site=site)) as injector:
            with pytest.raises(StorageError) as excinfo:
                ColumnarDocument.open(str(path), verify=True)
            assert excinfo.value.code == "REPRO-STORAGE"
            assert excinfo.value.context.get("check") == check
            assert injector.fired(site) > 0
        # Without the fault the same file opens and answers identically.
        engine = Engine.from_columnar_file(str(path), verify=True)
        assert keys(engine.run(QUERIES[1])) == baseline

    def test_delay_never_corrupts(self, tmp_path, site, check):
        path, baseline = self.saved_index(tmp_path)
        spec = ChaosSpec(site=site, action="delay", delay_seconds=0.001)
        with inject(spec, seed=1) as injector:
            engine = Engine.from_columnar_file(str(path), verify=True)
            assert injector.fired(site) > 0
        assert keys(engine.run(QUERIES[1])) == baseline
