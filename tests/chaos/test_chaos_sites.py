"""Fault injection across every chaos site and the QE1–QE6 query set.

The contract under test (ISSUE: execution guardrails):

* **strict mode** — an injected fault at any site surfaces as the
  original :class:`InjectedFault`;
* **fallback mode** (the default) — the engine recovers transparently,
  the results are identical to the navigational baseline, and the
  degradation is visible in the metrics / :class:`TracedRun`.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import QE_QUERIES
from repro.guard import (BudgetExceeded, Budgets, ChaosSpec, InjectedFault,
                         inject)
from repro.obs import ExecMetrics

#: chaos site → the strategy whose execution passes through it.
SITE_STRATEGIES = {
    "eval.ttp": "scjoin",
    "nljoin.match": "nljoin",
    "twigjoin.match": "twigjoin",
    "scjoin.match": "scjoin",
    "stacktree.match": "stacktree",
    "streaming.match": "streaming",
    "auto.choose": "auto",
    "cost.choose": "cost",
}

QE_ITEMS = sorted(QE_QUERIES.items())


def keys(results):
    return [getattr(item, "pre", item) for item in results]


@pytest.mark.parametrize("site,strategy", sorted(SITE_STRATEGIES.items()))
@pytest.mark.parametrize("name,query", QE_ITEMS)
class TestPerSite:
    def test_strict_surfaces_fault(self, strict_engine, site, strategy,
                                   name, query):
        """If the site fires, the original fault propagates; patterns the
        algorithm delegates internally (e.g. positional steps) may not
        reach it, in which case the run completes untouched."""
        compiled = strict_engine.compile(query)
        raised = False
        with inject(ChaosSpec(site=site)) as injector:
            try:
                strict_engine.execute(compiled, strategy=strategy)
            except InjectedFault as err:
                raised = True
                assert err.site == site
        assert raised == (injector.fired(site) > 0)

    def test_fallback_recovers_identical_results(self, qe_engine, site,
                                                 strategy, name, query):
        compiled = qe_engine.compile(query)
        baseline = keys(qe_engine.execute(compiled, strategy="nljoin"))
        metrics = ExecMetrics()
        with inject(ChaosSpec(site=site)) as injector:
            recovered = qe_engine.execute(compiled, strategy=strategy,
                                          metrics=metrics)
        assert keys(recovered) == baseline
        if injector.fired(site):
            assert metrics.fallbacks, \
                f"{site} fired on {name} but no fallback was recorded"
        else:
            assert not metrics.fallbacks


class TestCoverage:
    def test_every_site_fires_somewhere(self, strict_engine):
        """Each chaos point is reachable from at least one QE query under
        its designated strategy — no dead sites in the map."""
        for site, strategy in SITE_STRATEGIES.items():
            fired = 0
            for _, query in QE_ITEMS:
                compiled = strict_engine.compile(query)
                with inject(ChaosSpec(site=site)) as injector:
                    try:
                        strict_engine.execute(compiled, strategy=strategy)
                    except InjectedFault:
                        pass
                fired += injector.fired(site)
            assert fired > 0, f"site {site} never fired on any QE query"


class TestEnumerateSites:
    """The ``*.enumerate`` sites need a multi-output pattern (QE1–QE6
    are all single-output)."""

    QUERY = "for $x in $input//person return $x/name"
    XML = ("<doc><person><name>a</name></person>"
           "<person><name>b</name><person><name>c</name></person>"
           "</person></doc>")

    def multi_engine(self, **kwargs):
        from repro import Engine
        from repro.algebra.optimizer import OptimizerOptions
        return Engine.from_xml(
            self.XML,
            optimizer_options=OptimizerOptions(enable_multi_output=True),
            **kwargs)

    @pytest.mark.parametrize("site,strategy", [
        ("nljoin.enumerate", "nljoin"),
        ("twigjoin.enumerate", "twigjoin"),
    ])
    def test_strict_surfaces_fault(self, site, strategy):
        engine = self.multi_engine(strict=True)
        compiled = engine.compile(self.QUERY)
        assert compiled.tree_pattern_count() == 1  # merged, multi-output
        with inject(ChaosSpec(site=site)) as injector:
            with pytest.raises(InjectedFault):
                engine.execute(compiled, strategy=strategy)
        assert injector.fired(site) > 0

    @pytest.mark.parametrize("site,strategy", [
        ("nljoin.enumerate", "nljoin"),
        ("twigjoin.enumerate", "twigjoin"),
    ])
    def test_fallback_recovers(self, site, strategy):
        engine = self.multi_engine()
        compiled = engine.compile(self.QUERY)
        baseline = keys(engine.execute(compiled, strategy="nljoin"))
        metrics = ExecMetrics()
        with inject(ChaosSpec(site=site)):
            recovered = engine.execute(compiled, strategy=strategy,
                                       metrics=metrics)
        assert keys(recovered) == baseline
        assert metrics.fallbacks


class TestDelayAndBudgets:
    def test_injected_stall_trips_wall_budget(self, qe_engine):
        """A delay injected into the algorithm is caught by the wall
        budget — and a wall trip is final (no retry storm)."""
        compiled = qe_engine.compile(QE_QUERIES["QE1"])
        metrics = ExecMetrics()
        with inject(ChaosSpec(site="scjoin.match", action="delay",
                              delay_seconds=0.05)):
            with pytest.raises(BudgetExceeded) as exc:
                qe_engine.execute(compiled, strategy="scjoin",
                                  budgets=Budgets(wall_seconds=0.01),
                                  metrics=metrics)
        assert exc.value.kind == "wall"
        assert metrics.fallbacks == []

    def test_fault_plus_budget_single_structured_error(self, qe_engine):
        """Faults on every strategy plus a tiny step budget: the caller
        still sees exactly one structured error, never a hang."""
        compiled = qe_engine.compile(QE_QUERIES["QE4"])
        with inject(ChaosSpec(site="*.match")):
            with pytest.raises((BudgetExceeded, Exception)) as exc:
                qe_engine.execute(compiled, strategy="twigjoin",
                                  budgets=Budgets(max_steps=10))
        assert getattr(exc.value, "code", "").startswith("REPRO-")


class TestCorruption:
    def test_differential_comparison_detects_corruption(self, qe_engine):
        """A corrupted tuple stream (one element silently dropped) is
        exactly what the cross-strategy differential check must catch."""
        compiled = qe_engine.compile(QE_QUERIES["QE1"])
        baseline = keys(qe_engine.execute(compiled, strategy="nljoin"))
        assert baseline, "QE1 must have matches for this test to bite"
        with inject(ChaosSpec(site="twigjoin.match", action="corrupt")):
            corrupted = keys(qe_engine.execute(compiled,
                                               strategy="twigjoin"))
        assert corrupted != baseline
        assert len(corrupted) == len(baseline) - 1


class TestDeterminism:
    def test_same_seed_same_fires(self, qe_engine):
        def run(seed):
            compiled = qe_engine.compile(QE_QUERIES["QE3"])
            with inject(ChaosSpec(site="*.match", action="corrupt",
                                  rate=0.5), seed=seed) as injector:
                qe_engine.execute(compiled, strategy="twigjoin")
                return list(injector.log), list(injector.visits)

        assert run(1) == run(1)

    def test_seed_changes_fires(self, qe_engine):
        def fires(seed):
            compiled = qe_engine.compile(QE_QUERIES["QE3"])
            with inject(ChaosSpec(site="*", action="corrupt", rate=0.5),
                        seed=seed) as injector:
                qe_engine.execute(compiled, strategy="scjoin")
                return list(injector.log)

        logs = {tuple(fires(seed)) for seed in range(8)}
        assert len(logs) > 1
