"""Cross-checks on generated documents: every strategy and the
unoptimized reference engine must agree on a broad query suite."""

import pytest

from repro import Engine
from repro.bench import QE_QUERIES
from repro.data import XMARK_CHILD_DESCENDANT_PAIRS

from ..conftest import pres

XMARK_QUERIES = [
    "$input//person/name",
    "$input//person[emailaddress]",
    "$input/site/people/person[profile]/name",
    "$input//open_auction/bidder/increase",
    "$input//item[payment][incategory]/name",
    "$input//person[profile/age]/name",
    '$input//category[name = "art"]',
    "$input//person[2]/name",
    "count($input//bidder)",
    "for $p in $input//person where $p/profile return $p/name",
    "for $a in $input//open_auction return count($a/bidder)",
    "$input//mail/from",
    "$input//*[@id]/name",
]


@pytest.fixture(scope="module")
def member_engine(small_member_doc):
    return Engine(small_member_doc)


@pytest.fixture(scope="module")
def xmark_engine(small_xmark_doc):
    return Engine(small_xmark_doc)


def check(engine, query):
    reference = engine.run(query, optimize=False)
    reference_keys = pres(reference) if reference and hasattr(
        reference[0], "pre") else reference
    for strategy in ("nljoin", "twigjoin", "scjoin", "auto"):
        result = engine.run(query, strategy=strategy)
        keys = pres(result) if result and hasattr(result[0], "pre") \
            else result
        assert keys == reference_keys, (query, strategy)
    return reference_keys


class TestXMarkSuite:
    @pytest.mark.parametrize("query", XMARK_QUERIES)
    def test_strategies_agree(self, xmark_engine, query):
        check(xmark_engine, query)

    @pytest.mark.parametrize(
        "name,child_form,descendant_form", XMARK_CHILD_DESCENDANT_PAIRS,
        ids=[pair[0] for pair in XMARK_CHILD_DESCENDANT_PAIRS])
    def test_figure6_pairs(self, xmark_engine, name, child_form,
                           descendant_form):
        child_keys = check(xmark_engine, child_form)
        descendant_keys = check(xmark_engine, descendant_form)
        assert child_keys == descendant_keys
        assert child_keys


class TestQESuite:
    @pytest.mark.parametrize("name,query", sorted(QE_QUERIES.items()),
                             ids=sorted(QE_QUERIES))
    def test_strategies_agree_on_member_doc(self, member_engine, name,
                                            query):
        check(member_engine, query)

    def test_qe_queries_match_on_dense_doc(self, member_engine):
        """With few tags the QE patterns actually select something."""
        total = 0
        for query in QE_QUERIES.values():
            total += len(member_engine.run(query))
        assert total > 0


class TestDeepDocument:
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_selective_chains(self, k):
        from repro.data import deep_member_document
        engine = Engine(deep_member_document(400, 8))
        query = "/" + "/".join(["t1[1]"] * k)
        reference = pres(engine.run(query, optimize=False))
        assert len(reference) == 1
        for strategy in ("nljoin", "twigjoin", "scjoin"):
            assert pres(engine.run(query, strategy=strategy)) == reference
