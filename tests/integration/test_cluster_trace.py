"""Distributed tracing through the cluster: stitching, skew safety,
result identity, and live scraping (the telemetry-plane acceptance
suite).

Four properties, each aimed at a different way cross-process tracing
can lie:

1. a traced request through a **real 4-worker process cluster** yields
   one stitched trace — per-operator worker spans under the coordinator
   root, every parent resolvable, valid Chrome nesting;
2. **injected clock skew** between worker and coordinator tracers
   (unrelated monotonic origins, the thing that actually happens)
   cannot produce negative offsets or broken nesting, because only
   relative durations cross the wire;
3. tracing is **observation only**: traced cluster answers stay
   byte-identical to the single-process golden corpus;
4. ``/metrics`` scraped **during** a live cluster load run passes the
   exposition validator on every scrape (no torn or duplicated
   families under concurrency).
"""

from __future__ import annotations

import threading
import time
import urllib.request

import pytest

from repro.data import member_document, xmark_document
from repro.serve import (ClusterLayout, ClusterService,
                         ObservabilityServer, QueryRequest)
from repro.serve.loadgen import mixed_workload, run_load, \
    sequential_baseline
from repro.trace import (FlightRecorder, Tracer, chrome_trace,
                         validate_chrome_trace, validate_prometheus)

from tests.support.make_golden import (GOLDEN_DIR, golden_queries,
                                       render_results)

SCATTER_QUERY = "$input//person/name"


def build_layout(tmp_path_factory, name):
    directory = tmp_path_factory.mktemp(name)
    return ClusterLayout.build(
        {"xmark": xmark_document(40, seed=11).columns},
        str(directory), 4)


def assert_parents_resolve(trace):
    ids = {span.span_id for span in trace.spans}
    for span in trace.spans:
        assert span.parent_id is None or span.parent_id in ids, (
            f"span {span.name!r} references dropped parent "
            f"{span.parent_id}")


def assert_no_negative_offsets(trace):
    for span in trace.spans:
        assert span.start >= trace.root.start - 1e-9, (
            f"span {span.name!r} starts before the trace root")
        assert span.duration >= 0.0


# -- 1. stitching through real processes -------------------------------------


class TestProcessStitching:
    @pytest.fixture(scope="class")
    def traced_cluster(self, tmp_path_factory):
        layout = build_layout(tmp_path_factory, "cluster-trace")
        tracer = Tracer()
        flight = FlightRecorder()
        service = ClusterService(layout, workers=4, tracer=tracer,
                                 flight_recorder=flight)
        yield service
        service.close()

    @pytest.fixture(scope="class")
    def shard_count(self, traced_cluster):
        return traced_cluster.layout.manifests["xmark"].shard_count

    @pytest.fixture(scope="class")
    def stitched(self, traced_cluster):
        results = traced_cluster.query("xmark", SCATTER_QUERY,
                                       timeout=120.0)
        assert results
        snapshot = traced_cluster.flight_recorder()
        assert snapshot.recorded >= 1
        return snapshot.recent[-1].trace

    def test_one_trace_with_worker_spans_under_root(self, stitched,
                                                    shard_count):
        assert shard_count >= 2, "document too small to scatter"
        names = [span.name for span in stitched.spans]
        assert names.count("shard") == shard_count, (
            "a scattered request must produce one shard span per task")
        assert names.count("worker") == shard_count, (
            "each worker's remote root must be grafted")
        # Per-operator spans from inside the workers crossed the pipe.
        assert "execute" in names
        assert any(name.startswith("pattern:") or name == "compile"
                   for name in names)

    def test_shard_spans_carry_both_clock_measurements(self, stitched):
        shard_spans = [span for span in stitched.spans
                       if span.name == "shard"]
        for span in shard_spans:
            # Coordinator-measured wait and worker-measured execution
            # are separate attrs — never subtracted across clocks.
            assert span.attrs["wait_seconds"] >= 0.0
            assert span.attrs["worker_seconds"] >= 0.0
            assert span.duration >= span.attrs["wait_seconds"] - 1e-9

    def test_worker_spans_nest_inside_their_shard_span(self, stitched):
        by_id = {span.span_id: span for span in stitched.spans}
        grafted = [span for span in stitched.spans
                   if span.name == "worker"]
        assert grafted
        for span in grafted:
            parent = by_id[span.parent_id]
            assert parent.name == "shard"
            assert span.start >= parent.start - 1e-9
            assert span.start + span.duration \
                <= parent.start + parent.duration + 1e-6

    def test_parents_resolve_and_offsets_nonnegative(self, stitched):
        assert_parents_resolve(stitched)
        assert_no_negative_offsets(stitched)

    def test_chrome_export_validates(self, stitched):
        validate_chrome_trace(chrome_trace(stitched))

    def test_remote_op_stats_merged(self, stitched):
        remote = {stat.name: stat for key, stat
                  in stitched.op_stats.items() if key < 0}
        assert remote, "worker op_stats did not cross the pipe"
        assert all(stat.calls >= 1 for stat in remote.values())


# -- 2. injected clock skew --------------------------------------------------


class TestClockSkew:
    def test_skewed_worker_clocks_cannot_corrupt_the_tree(
            self, tmp_path_factory):
        layout = build_layout(tmp_path_factory, "cluster-skew")
        tracer = Tracer()
        flight = FlightRecorder()
        service = ClusterService(layout, workers=4, transport="inline",
                                 tracer=tracer, flight_recorder=flight)
        try:
            # Give every inline worker a tracer whose monotonic origin
            # is wildly offset from the coordinator's — one far ahead,
            # one far behind, one drifting per call.
            skews = [+1e6, -1e6, +12345.678, -0.5]
            for transport, skew in zip(service._workers, skews):
                transport.worker.tracer = Tracer(
                    clock=(lambda s=skew: time.perf_counter() + s))
            results = service.query("xmark", SCATTER_QUERY,
                                    timeout=120.0)
            assert results
            trace = service.flight_recorder().recent[-1].trace
            assert_parents_resolve(trace)
            assert_no_negative_offsets(trace)
            validate_chrome_trace(chrome_trace(trace))
            names = [span.name for span in trace.spans]
            assert names.count("worker") \
                == layout.manifests["xmark"].shard_count
        finally:
            service.close()


# -- 3. tracing is observation only ------------------------------------------


class TestResultIdentity:
    @pytest.fixture(scope="class")
    def traced_cluster(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("cluster-traced-golden")
        layout = ClusterLayout.build(
            {"member": member_document(600, depth=5, tag_count=4,
                                       seed=7).columns,
             "xmark": xmark_document(40, seed=11).columns},
            str(directory), 4)
        service = ClusterService(layout, workers=4, tracer=Tracer(),
                                 flight_recorder=FlightRecorder())
        yield service
        service.close()

    @pytest.mark.parametrize("stem", sorted(golden_queries()))
    def test_traced_cluster_matches_golden_bytes(self, traced_cluster,
                                                 stem):
        queries = golden_queries()
        document = stem.split("_", 1)[0]
        expected = (GOLDEN_DIR / f"{stem}.xml").read_text(
            encoding="utf-8")
        got = render_results(traced_cluster.query(
            document, queries[stem], timeout=120.0))
        assert got == expected, (
            f"{stem}: tracing changed the answer bytes")


# -- 4. scraping during live load --------------------------------------------


class TestLiveScrape:
    def test_metrics_scraped_mid_load_validates(self, tmp_path_factory):
        layout = build_layout(tmp_path_factory, "cluster-scrape")
        service = ClusterService(layout, workers=4, transport="inline",
                                 tracer=Tracer(),
                                 flight_recorder=FlightRecorder())
        workload = [request for request in mixed_workload(seed=13)
                    if request.document == "xmark"]
        scrapes = []
        failures = []
        stop = threading.Event()

        def scraper(url):
            while not stop.is_set():
                try:
                    with urllib.request.urlopen(url + "/metrics",
                                                timeout=10) as response:
                        text = response.read().decode("utf-8")
                    validate_prometheus(text)
                    scrapes.append(text)
                except Exception as err:  # pragma: no cover - on bug
                    failures.append(err)
                    return
                time.sleep(0.01)

        try:
            with ObservabilityServer(service) as obs:
                thread = threading.Thread(target=scraper,
                                          args=(obs.url,))
                thread.start()
                expected = sequential_baseline(service, workload)
                report = run_load(service, workload, concurrency=4,
                                  requests_per_client=8, seed=13,
                                  timeout=60.0, expected=expected)
                stop.set()
                thread.join(timeout=30)
        finally:
            service.close()
        assert not failures, f"mid-load scrape failed: {failures[0]}"
        assert scrapes, "the scraper never completed a poll"
        assert report.mismatches == 0
        assert report.errors == 0
        # The final scrape reflects the load that ran.
        assert "repro_cluster_shard_latency_seconds_bucket" \
            in scrapes[-1]
