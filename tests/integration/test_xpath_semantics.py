"""An XPath/XQuery semantics conformance suite.

Small, hand-checked cases covering axes, predicates, functions,
operators and FLWOR semantics, each run end-to-end through the
optimizing pipeline.  The expected values are written out by hand (not
derived from the engine), so these tests pin the *language semantics*
rather than implementation agreement.
"""

import pytest

from repro import Engine

DOC = """<library>
  <shelf floor="1">
    <book lang="en" year="2001">
      <title>Aleph</title>
      <author>Borges</author>
      <chapter><title>One</title><page n="1"/><page n="2"/></chapter>
      <chapter><title>Two</title><page n="3"/></chapter>
    </book>
    <book lang="es" year="1999">
      <title>Rayuela</title>
      <author>Cortazar</author>
      <author>Anon</author>
    </book>
  </shelf>
  <shelf floor="2">
    <book lang="en" year="2001">
      <title>Ficciones</title>
      <author>Borges</author>
    </book>
    <magazine year="2001"><title>Aleph</title></magazine>
  </shelf>
</library>"""


@pytest.fixture(scope="module")
def engine():
    return Engine.from_xml(DOC)


def values(engine, query, **kwargs):
    result = engine.run(query, **kwargs)
    return [item.string_value() if hasattr(item, "string_value") else item
            for item in result]


class TestAxesSemantics:
    def test_child_axis(self, engine):
        assert values(engine, "/library/shelf/book/title") == [
            "Aleph", "Rayuela", "Ficciones"]

    def test_descendant_axis(self, engine):
        # every title in the document, in document order
        assert values(engine, "$input//title") == [
            "Aleph", "One", "Two", "Rayuela", "Ficciones", "Aleph"]

    def test_descendant_from_inner_context(self, engine):
        assert values(engine, "/library/shelf[1]/book[1]//title") == [
            "Aleph", "One", "Two"]

    def test_parent_axis(self, engine):
        assert values(engine, "count($input//page/..)") == [2]

    def test_attribute_axis(self, engine):
        assert values(engine, "/library/shelf/@floor") == ["1", "2"]

    def test_wildcard(self, engine):
        assert values(engine, "count(/library/shelf/*)") == [4]

    def test_self_via_context(self, engine):
        assert values(engine, "$input//book[./author = 'Cortazar']/title") \
            == ["Rayuela"]

    def test_node_kind_test(self, engine):
        assert values(engine, "count($input//chapter/node())") == [5]

    def test_text_kind_test(self, engine):
        # //book[1] selects the first book *per shelf* (positions count
        # per parent), hence two titles.
        assert values(engine, "$input//book[1]/title/text()") == [
            "Aleph", "Ficciones"]
        assert values(engine, "($input//book)[1]/title/text()") == ["Aleph"]


class TestPredicateSemantics:
    def test_existence_predicate(self, engine):
        assert values(engine, "$input//book[chapter]/title") == ["Aleph"]

    def test_value_predicate(self, engine):
        assert values(engine, '$input//book[author = "Borges"]/title') == [
            "Aleph", "Ficciones"]

    def test_attribute_value_predicate(self, engine):
        assert values(engine, '$input//book[@lang = "es"]/title') == [
            "Rayuela"]

    def test_numeric_predicate_counts_per_context(self, engine):
        # the second author *per book*
        assert values(engine, "$input//book/author[2]") == ["Anon"]

    def test_numeric_predicate_on_context_sequence(self, engine):
        assert values(engine, "(/library/shelf/book)[2]/title") == [
            "Rayuela"]

    def test_position_function(self, engine):
        assert values(engine,
                      "/library/shelf/book[position() = 1]/title") == [
            "Aleph", "Ficciones"]

    def test_last_function(self, engine):
        assert values(engine,
                      "/library/shelf/book[position() = last()]/title") == [
            "Rayuela", "Ficciones"]

    def test_stacked_predicates(self, engine):
        assert values(engine,
                      '$input//book[author = "Borges"][chapter]/title') == [
            "Aleph"]

    def test_predicate_with_comparison_of_counts(self, engine):
        assert values(engine, "$input//book[count(author) = 2]/title") == [
            "Rayuela"]

    def test_nested_relative_predicate(self, engine):
        assert values(engine,
                      "$input//shelf[book/chapter]/@floor") == ["1"]

    def test_double_slash_predicate(self, engine):
        assert values(engine, "$input//shelf[.//page]/@floor") == ["1"]


class TestOperatorSemantics:
    def test_general_comparison_existential(self, engine):
        # some title equals "Aleph" → true
        assert values(engine, '$input//title = "Aleph"') == [True]
        assert values(engine, '$input//title = "Nothing"') == [False]

    def test_numeric_comparison_coerces(self, engine):
        assert values(engine, "$input//book[@year < 2000]/title") == [
            "Rayuela"]

    def test_arithmetic(self, engine):
        assert values(engine, "(2 + 3) * 4 - 6 div 2") == [17]

    def test_mod(self, engine):
        assert values(engine, "7 mod 3") == [1]

    def test_range_operator(self, engine):
        assert values(engine, "count(1 to 10)") == [10]

    def test_union_sorts_and_dedups(self, engine):
        result = engine.run("$input//chapter/title | $input//book/title "
                            "| $input//book/title")
        pres = [node.pre for node in result]
        assert pres == sorted(set(pres))
        assert len(result) == 5

    def test_and_or(self, engine):
        assert values(engine,
                      "$input//book[chapter and author]/title") == ["Aleph"]
        assert values(
            engine,
            '$input//book[@lang = "es" or chapter]/title') == [
            "Aleph", "Rayuela"]

    def test_empty_sequence_comparisons_false(self, engine):
        assert values(engine, "$input//nothing = 'x'") == [False]


class TestFunctionSemantics:
    def test_count(self, engine):
        assert values(engine, "count($input//book)") == [3]

    def test_not(self, engine):
        assert values(engine, "$input//book[not(chapter)]/title") == [
            "Rayuela", "Ficciones"]

    def test_exists_empty(self, engine):
        assert values(engine, "exists($input//magazine)") == [True]
        assert values(engine, "empty($input//magazine)") == [False]

    def test_string_functions(self, engine):
        assert values(engine, "contains('Rayuela', 'yue')") == [True]
        assert values(engine, "starts-with('Rayuela', 'Ra')") == [True]
        assert values(engine, "string-length('abc')") == [3]
        assert values(engine, "concat('a', 'b', 'c')") == ["abc"]

    def test_name(self, engine):
        assert values(engine, "name(/library)") == ["library"]

    def test_aggregates(self, engine):
        assert values(engine, "sum($input//page/@n)") == [6]
        assert values(engine, "max($input//book/@year)") == [2001]
        assert values(engine, "min($input//book/@year)") == [1999]

    def test_distinct_values(self, engine):
        assert values(engine,
                      "count(distinct-values($input//book/@year))") == [2]

    def test_number(self, engine):
        assert values(engine, "number(($input//page)[1]/@n) + 1") == [2]


class TestFLWORSemantics:
    def test_iteration_order(self, engine):
        assert values(engine,
                      "for $b in /library/shelf/book return $b/title") == [
            "Aleph", "Rayuela", "Ficciones"]

    def test_where_filters(self, engine):
        assert values(engine,
                      "for $b in $input//book where $b/@year = 2001 "
                      "return $b/title") == ["Aleph", "Ficciones"]

    def test_at_variable(self, engine):
        assert values(engine,
                      "for $b at $i in /library/shelf/book return $i") == [
            1, 2, 3]

    def test_let_binding(self, engine):
        assert values(engine,
                      "let $books := $input//book "
                      "return count($books)") == [3]

    def test_nested_for(self, engine):
        assert values(engine,
                      "for $s in /library/shelf "
                      "for $b in $s/book return $b/title") == [
            "Aleph", "Rayuela", "Ficciones"]

    def test_quantified_some(self, engine):
        assert values(engine,
                      "for $s in /library/shelf "
                      "where some $b in $s/book satisfies $b/chapter "
                      "return $s/@floor") == ["1"]

    def test_quantified_every(self, engine):
        assert values(engine,
                      "for $s in /library/shelf "
                      "where every $b in $s/book satisfies $b/author "
                      "return $s/@floor") == ["1", "2"]

    def test_if_then_else(self, engine):
        assert values(engine,
                      "for $b in $input//book return "
                      "if ($b/chapter) then 'chapters' else 'flat'") == [
            "chapters", "flat", "flat"]

    def test_sequence_construction(self, engine):
        assert values(engine, "(1, 'two', 3.5)") == [1, "two", 3.5]


@pytest.mark.parametrize("strategy", ["nljoin", "twigjoin", "scjoin",
                                      "stacktree", "streaming", "cost"])
class TestStrategyConformance:
    """A representative slice of the suite under every strategy."""

    CASES = [
        ("$input//title",
         ["Aleph", "One", "Two", "Rayuela", "Ficciones", "Aleph"]),
        ('$input//book[author = "Borges"]/title', ["Aleph", "Ficciones"]),
        ("$input//book[chapter]/title", ["Aleph"]),
        ("$input//book/author[2]", ["Anon"]),
    ]

    def test_cases(self, engine, strategy):
        for query, expected in self.CASES:
            assert values(engine, query, strategy=strategy) == expected, \
                (query, strategy)
