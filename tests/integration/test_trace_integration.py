"""Tracing end to end: results unchanged, EXPLAIN ANALYZE, serve spans.

Tracing is an observer — the central integration guarantee is that a
traced run returns **byte-identical** results to an untraced one, for
every strategy.  On top of that: ``Engine.explain_analyze`` must
produce per-operator wall times and cardinalities for the full QE1–QE6
set, and a traced ``QueryService`` must stamp responses with trace ids
and feed its flight recorder.
"""

import json

import pytest

from repro import Engine
from repro.bench import QE_QUERIES
from repro.serve import DocumentCatalog, QueryRequest, QueryService
from repro.trace import (FlightRecorder, Tracer, chrome_trace,
                         validate_chrome_trace)

from tests.support.make_golden import render_results

ALL_STRATEGIES = ("nljoin", "twigjoin", "scjoin", "stacktree",
                  "streaming", "auto", "cost", "item")


@pytest.fixture(scope="module")
def member_engine(small_member_doc):
    return Engine(small_member_doc)


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
@pytest.mark.parametrize("query_name", sorted(QE_QUERIES))
def test_traced_results_byte_identical(member_engine, query_name,
                                       strategy):
    query = QE_QUERIES[query_name]
    compiled = member_engine.compile(query)
    baseline = render_results(
        member_engine.execute(compiled, strategy=strategy))
    trace = Tracer().begin("query")
    try:
        traced = render_results(
            member_engine.execute(compiled, strategy=strategy,
                                  tracing=trace))
    finally:
        trace.finish()
    assert traced == baseline
    assert trace.op_stats, "traced run recorded no operator stats"


@pytest.mark.parametrize("query_name", sorted(QE_QUERIES))
def test_explain_analyze_qe_queries(member_engine, query_name):
    analysis = member_engine.explain_analyze(QE_QUERIES[query_name],
                                             strategy="twigjoin")
    rendered = analysis.render()
    assert "EXPLAIN ANALYZE" in rendered
    assert "strategy=twigjoin" in rendered
    assert "TupleTreePattern" in rendered
    assert "rows" in rendered
    # Every executed operator carries a call count and cardinality.
    assert analysis.op_stats
    for stat in analysis.op_stats.values():
        assert stat.calls >= 1
        assert stat.seconds >= 0.0
    # The compile pipeline stages are all accounted for.
    stages = analysis.stage_seconds()
    assert {"parse", "rewrite", "compile"} <= set(stages)
    # The trace exports as a valid, correctly nested Chrome trace.
    data = chrome_trace(analysis.trace)
    validate_chrome_trace(json.loads(json.dumps(data)))


def test_explain_analyze_dot_carries_annotations(member_engine):
    analysis = member_engine.explain_analyze(QE_QUERIES["QE1"])
    dot = analysis.to_dot()
    assert "digraph" in dot
    assert "rows" in dot       # per-operator cardinality annotations
    assert "style=bold" in dot


def test_run_traced_attaches_trace(member_engine):
    tracer = Tracer()
    run = member_engine.run_traced(QE_QUERIES["QE1"], tracer=tracer)
    assert run.trace is not None
    assert run.trace.finished
    assert run.trace.trace_id in run.report()


def member_catalog(small_member_doc) -> DocumentCatalog:
    catalog = DocumentCatalog()
    catalog.add_document("member", small_member_doc)
    return catalog


class TestServeTracing:
    @pytest.fixture()
    def service(self, small_member_doc):
        service = QueryService(member_catalog(small_member_doc),
                               workers=2, tracer=Tracer(),
                               flight_recorder=FlightRecorder(recent=64))
        yield service
        service.close()

    def test_responses_carry_trace_ids(self, service):
        queries = [QE_QUERIES["QE1"], QE_QUERIES["QE3"]]
        responses = [
            service.submit(QueryRequest(document="member",
                                        query=query)).response()
            for query in queries]
        for response in responses:
            assert response.error is None
            assert response.trace_id is not None
        assert len({response.trace_id
                    for response in responses}) == len(responses)

    def test_flight_recorder_captures_requests(self, service):
        for _ in range(3):
            service.submit(
                QueryRequest(document="member",
                             query=QE_QUERIES["QE2"])).response()
        snapshot = service.flight_recorder()
        assert snapshot.recorded == 3
        for trace in snapshot.traces():
            names = {span.name for span in trace.spans}
            assert "queue" in names
            assert "execute" in names
        validate_chrome_trace(chrome_trace(snapshot.traces()))

    def test_untraced_service_has_no_recorder(self, small_member_doc):
        service = QueryService(member_catalog(small_member_doc),
                               workers=1)
        try:
            response = service.submit(
                QueryRequest(document="member",
                             query=QE_QUERIES["QE1"])).response()
            assert response.error is None
            assert response.trace_id is None
            assert service.flight_recorder() is None
        finally:
            service.close()
