"""Cross-strategy differential suite.

The paper's premise is that the physical algorithms are interchangeable
implementations of the same ``TupleTreePattern`` semantics; this suite
enforces it end to end.  Every strategy — the five concrete algorithms
plus both choosers — must produce the *identical* result sequence (node
identities, in order) for the full QE1–QE6 set (paper Figure 5) and the
adapted XMark catalog, with NLJoin-on-the-unoptimized-plan as the
executable reference.

The same wall holds across *execution backends*: every strategy is
re-run under ``backend="compiled"`` (the produce/consume plan compiler,
:mod:`repro.compiled`) against the interpreted reference, on optimized
and unoptimized plans alike.
"""

import pytest

from repro import Engine
from repro.bench import QE_QUERIES, XMARK_CATALOG

ALL_STRATEGIES = ("nljoin", "twigjoin", "scjoin", "stacktree",
                  "streaming", "auto", "cost")


def keys(sequence):
    """Node identities (pre numbers) or plain values, order-preserving."""
    return [getattr(item, "pre", item) for item in sequence]


@pytest.fixture(scope="module")
def member_engine(small_member_doc):
    return Engine(small_member_doc)


@pytest.fixture(scope="module")
def xmark_engine(small_xmark_doc):
    return Engine(small_xmark_doc)


@pytest.fixture(scope="module")
def qe_references(member_engine):
    return {name: keys(member_engine.run(query, strategy="nljoin",
                                         optimize=False))
            for name, query in QE_QUERIES.items()}


@pytest.fixture(scope="module")
def xmark_references(xmark_engine):
    return {name: keys(xmark_engine.run(entry.query, strategy="nljoin",
                                        optimize=False))
            for name, entry in XMARK_CATALOG.items()}


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
@pytest.mark.parametrize("query_name", sorted(QE_QUERIES))
def test_qe_queries_agree(member_engine, qe_references, query_name,
                          strategy):
    query = QE_QUERIES[query_name]
    got = keys(member_engine.run(query, strategy=strategy))
    assert got == qe_references[query_name], (
        f"{query_name} under {strategy} diverged from the NLJoin "
        f"reference")


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
@pytest.mark.parametrize("query_name", sorted(XMARK_CATALOG))
def test_xmark_catalog_agrees(xmark_engine, xmark_references, query_name,
                              strategy):
    entry = XMARK_CATALOG[query_name]
    got = keys(xmark_engine.run(entry.query, strategy=strategy))
    assert got == xmark_references[query_name], (
        f"{query_name} under {strategy} diverged from the NLJoin "
        f"reference")


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
def test_unoptimized_plans_agree_too(member_engine, qe_references,
                                     strategy):
    """The strategies are also interchangeable on unoptimized plans
    (patterns there are single steps, so this exercises the n-way
    composition of many small pattern evaluations)."""
    for name, query in QE_QUERIES.items():
        got = keys(member_engine.run(query, strategy=strategy,
                                     optimize=False))
        assert got == qe_references[name], (name, strategy)


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
@pytest.mark.parametrize("query_name", sorted(QE_QUERIES))
def test_qe_queries_agree_compiled(member_engine, qe_references,
                                   query_name, strategy):
    query = QE_QUERIES[query_name]
    got = keys(member_engine.run(query, strategy=strategy,
                                 backend="compiled"))
    assert got == qe_references[query_name], (
        f"{query_name} under {strategy} (compiled) diverged from the "
        f"NLJoin reference")


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
@pytest.mark.parametrize("query_name", sorted(XMARK_CATALOG))
def test_xmark_catalog_agrees_compiled(xmark_engine, xmark_references,
                                       query_name, strategy):
    entry = XMARK_CATALOG[query_name]
    got = keys(xmark_engine.run(entry.query, strategy=strategy,
                                backend="compiled"))
    assert got == xmark_references[query_name], (
        f"{query_name} under {strategy} (compiled) diverged from the "
        f"NLJoin reference")


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
def test_unoptimized_plans_agree_compiled(member_engine, qe_references,
                                          strategy):
    """The compiled backend also covers unoptimized plans (the codegen
    role the ``item`` fallback strategy executes)."""
    for name, query in QE_QUERIES.items():
        got = keys(member_engine.run(query, strategy=strategy,
                                     optimize=False, backend="compiled"))
        assert got == qe_references[name], (name, strategy, "compiled")
