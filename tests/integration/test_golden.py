"""Golden regression corpus.

Every strategy's serialized output for QE1–QE6 and the adapted XMark
catalog must be byte-identical to the recorded files in
``tests/golden/``.  Unlike the cross-strategy differential suite (which
only demands strategies agree with *each other*), this pins the results
across time: an optimizer or serializer change that shifts output shows
up as a corpus diff, not a silent drift.

Regenerate intentionally with::

    PYTHONPATH=src python -m tests.support.make_golden
"""

import pytest

from repro import Engine

from tests.support.make_golden import (GOLDEN_DIR, golden_queries,
                                       reference_engines, render_results)

ALL_STRATEGIES = ("nljoin", "twigjoin", "scjoin", "stacktree",
                  "streaming", "auto", "cost", "item")

_QUERIES = golden_queries()


@pytest.fixture(scope="module")
def engines():
    return reference_engines()


def test_corpus_is_complete():
    recorded = {path.stem for path in GOLDEN_DIR.glob("*.xml")}
    assert recorded == set(_QUERIES), (
        "golden corpus out of sync with the query catalog — "
        "rerun python -m tests.support.make_golden")


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
@pytest.mark.parametrize("stem", sorted(_QUERIES))
def test_golden_bytes(engines, stem, strategy):
    engine = engines[stem.split("_", 1)[0]]
    expected = (GOLDEN_DIR / f"{stem}.xml").read_text(encoding="utf-8")
    got = render_results(engine.run(_QUERIES[stem], strategy=strategy))
    assert got == expected, (
        f"{stem} under {strategy} drifted from the golden corpus")
