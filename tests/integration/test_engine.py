"""End-to-end engine behaviour."""

import pytest

from repro import Engine, Strategy, execute_query
from repro.algebra import DynamicError

from ..conftest import PEOPLE_XML, pres, string_values


class TestBasicQueries:
    def test_path_query(self, people_engine):
        result = people_engine.run("$input//person[emailaddress]/name")
        assert string_values(result) == ["John", "John", "Ada"]

    def test_absolute_path(self, people_engine):
        result = people_engine.run("/site/people/person/name")
        assert len(result) == 4

    def test_value_predicate(self, people_engine):
        result = people_engine.run('$input//person[name = "Mary"]/@id')
        assert string_values(result) == ["p2"]

    def test_positional_predicate(self, people_engine):
        result = people_engine.run("$input//person[2]/name")
        assert string_values(result) == ["Mary"]

    def test_positional_last(self, people_engine):
        result = people_engine.run(
            "$input//person[position() = last()]/name")
        assert string_values(result) == ["Ada"]

    def test_flwor(self, people_engine):
        result = people_engine.run(
            "for $p in $input//person where $p/emailaddress "
            "return $p/name")
        assert string_values(result) == ["John", "John", "Ada"]

    def test_let(self, people_engine):
        result = people_engine.run(
            "let $ps := $input//person return count($ps)")
        assert result == [4]

    def test_count_aggregation(self, people_engine):
        assert people_engine.run("count($input//interest)") == [3]

    def test_quantifier(self, people_engine):
        result = people_engine.run(
            "for $p in $input//person "
            "where some $i in $p/profile/interest "
            "satisfies $i/@category = 'art' return $p/@id")
        assert string_values(result) == ["p1"]

    def test_if_expression(self, people_engine):
        result = people_engine.run(
            "if (count($input//person) > 3) then 'many' else 'few'")
        assert result == ["many"]

    def test_arithmetic(self, people_engine):
        assert people_engine.run("1 + 2 * 3") == [7]

    def test_range(self, people_engine):
        assert people_engine.run("1 to 4") == [1, 2, 3, 4]

    def test_union(self, people_engine):
        result = people_engine.run("$input//name | $input//emailaddress")
        assert pres(result) == sorted(pres(result))
        assert len(result) == 7

    def test_attribute_axis(self, people_engine):
        result = people_engine.run("$input//interest/@category")
        assert string_values(result) == ["art", "music", "music"]

    def test_parent_axis(self, people_engine):
        result = people_engine.run("$input//emailaddress/../name")
        assert string_values(result) == ["John", "John", "Ada"]

    def test_empty_result(self, people_engine):
        assert people_engine.run("$input//unicorn") == []

    def test_context_item_in_predicate(self, people_engine):
        result = people_engine.run('$input//name[. = "Ada"]')
        assert string_values(result) == ["Ada"]


class TestStrategies:
    QUERIES = [
        "$input//person[emailaddress]/name",
        "$input//person[1]/name",
        "/site/people/person/profile/interest",
        "for $p in $input//person return $p/name",
        '$input//person[name = "John"]/emailaddress',
    ]

    @pytest.mark.parametrize("query", QUERIES)
    @pytest.mark.parametrize("strategy", ["nljoin", "twigjoin", "scjoin",
                                          "auto"])
    def test_all_strategies_agree(self, people_engine, query, strategy):
        reference = pres(people_engine.run(query, optimize=False))
        assert pres(people_engine.run(query, strategy=strategy)) == reference

    def test_default_strategy_configurable(self, people_doc):
        engine = Engine(people_doc, default_strategy=Strategy.TWIG_JOIN)
        result = engine.run("$input//person/name")
        assert len(result) == 4


class TestVariables:
    def test_explicit_binding(self, people_engine, people_doc):
        person = people_doc.stream("person")[1]
        result = people_engine.run("$p/name", variables={"p": [person]})
        assert string_values(result) == ["Mary"]

    def test_multiple_free_variables_default_to_root(self, people_engine):
        result = people_engine.run("count($a//person) = count($b//person)")
        assert result == [True]

    def test_unknown_variable_defaults_to_document(self, people_engine):
        assert len(people_engine.run("$whatever//person")) == 4


class TestCompiledQueries:
    def test_stages_exposed(self, people_engine):
        compiled = people_engine.compile("$input//person[emailaddress]/name")
        assert compiled.core is not None
        assert compiled.tpnf is not None
        assert compiled.plan is not None
        assert compiled.optimized is not None
        assert compiled.tree_pattern_count() == 1
        (pattern,) = compiled.tree_patterns()
        assert "person" in pattern.to_string()

    def test_explain_contains_stages(self, people_engine):
        report = people_engine.compile(
            "$input//person[emailaddress]/name").explain()
        assert "Normalized core" in report
        assert "TPNF'" in report
        assert "TupleTreePattern" in report

    def test_reuse_compiled_query(self, people_engine):
        compiled = people_engine.compile("$input//person/name")
        first = people_engine.execute(compiled)
        second = people_engine.execute(compiled, strategy="twigjoin")
        assert pres(first) == pres(second)

    def test_unoptimized_execution(self, people_engine):
        compiled = people_engine.compile("$input//person/name")
        result = people_engine.execute(compiled, optimized=False)
        assert len(result) == 4

    def test_rewrite_trace_disabled_by_default(self, people_engine):
        compiled = people_engine.compile("$input//person/name")
        assert compiled.rewrite_trace is None

    def test_rewrite_trace_records_passes(self, people_engine):
        compiled = people_engine.compile(
            "$input//person[emailaddress]/name", trace=True)
        names = [name for name, _ in compiled.rewrite_trace.steps]
        assert "typeswitch" in names
        assert "flwor" in names
        assert "docorder" in names
        # every snapshot is a valid core expression
        from repro.xqcore import pretty
        for _, snapshot in compiled.rewrite_trace.steps:
            assert pretty(snapshot)

    def test_rewrite_trace_loop_split_when_applicable(self, people_engine):
        compiled = people_engine.compile(
            "for $x in $input//site return "
            "(for $y in $x/people return $y/person)", trace=True)
        names = [name for name, _ in compiled.rewrite_trace.steps]
        assert "loop-split" in names


class TestDocumentOrderSemantics:
    def test_path_returns_document_order(self, mixed_engine):
        result = mixed_engine.run("$input//person/name")
        assert string_values(result) == ["outer", "inner", "outer2"]

    def test_flwor_returns_grouped_order(self, mixed_engine):
        result = mixed_engine.run(
            "for $p in $input//person return $p/name")
        assert string_values(result) == ["outer", "outer2", "inner"]

    @pytest.mark.parametrize("strategy", ["nljoin", "twigjoin", "scjoin"])
    def test_order_semantics_per_strategy(self, mixed_engine, strategy):
        path = mixed_engine.run("$input//person/name", strategy=strategy)
        flwor = mixed_engine.run(
            "for $p in $input//person return $p/name", strategy=strategy)
        assert string_values(path) == ["outer", "inner", "outer2"]
        assert string_values(flwor) == ["outer", "outer2", "inner"]


class TestConvenience:
    def test_execute_query(self):
        result = execute_query(PEOPLE_XML, "count($input//person)")
        assert result == [4]

    def test_from_file(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text(PEOPLE_XML, encoding="utf-8")
        engine = Engine.from_file(str(path))
        assert engine.run("count($input//person)") == [4]

    def test_parse_error_propagates(self, people_engine):
        from repro.xquery import XQuerySyntaxError
        with pytest.raises(XQuerySyntaxError):
            people_engine.run("$input//(")
