"""The paper's headline claims, as integration tests.

* Figure 1's classification of queries into single / multiple tree
  patterns;
* Section 5.1: twenty syntactic variants all compile to the identical
  single-TupleTreePattern plan (and agree with the unoptimized engine);
* Section 2's Q1a-n normalization and P5 optimization artifacts.
"""

import pytest

from repro import Engine
from repro.algebra import DDOPlan, Select, walk_plan
from repro.bench import BASE_QUERY, generate_variants
from repro.data import xmark_document

from ..conftest import pres


@pytest.fixture(scope="module")
def xmark_engine():
    return Engine(xmark_document(60, seed=20))


class TestFigure1Classification:
    """How many TupleTreePattern operators each Figure 1 query needs."""

    def counts(self, engine, query):
        compiled = engine.compile(query)
        return compiled.tree_pattern_count()

    def test_q1a_single_pattern(self, people_engine):
        assert self.counts(
            people_engine, "$d//person[emailaddress]/name") == 1

    def test_q1b_single_pattern(self, people_engine):
        assert self.counts(
            people_engine,
            "(for $x in $d//person[emailaddress] return $x)/name") == 1

    def test_q1c_single_pattern(self, people_engine):
        assert self.counts(
            people_engine,
            "let $x := (for $y in $d//person where $y/emailaddress "
            "return $y) return $x/name") == 1

    def test_q2_multiple_patterns_with_selection(self, people_engine):
        compiled = people_engine.compile(
            '$d//person[name = "John"]/emailaddress')
        assert compiled.tree_pattern_count() >= 2
        assert any(isinstance(node, Select)
                   for node in walk_plan(compiled.optimized))

    def test_q3_positional_treatment(self, people_engine):
        compiled = people_engine.compile("$d//person[1]/name")
        assert compiled.tree_pattern_count() >= 1
        assert any(isinstance(node, Select)
                   for node in walk_plan(compiled.optimized))

    def test_q4_positional_treatment(self, people_engine):
        compiled = people_engine.compile(
            '$d//person[name = "John"]/emailaddress[1]')
        assert compiled.tree_pattern_count() >= 2

    def test_q5_two_patterns_via_map(self, people_engine):
        compiled = people_engine.compile(
            "for $x in $d//person[emailaddress] return $x/name")
        assert compiled.tree_pattern_count() == 2

    def test_q1_and_q5_plans_differ(self, people_engine):
        q1 = people_engine.compile(
            "$d//person[emailaddress]/name").canonical_plan()
        q5 = people_engine.compile(
            "for $x in $d//person[emailaddress] return $x/name"
        ).canonical_plan()
        assert q1 != q5


class TestSection51Variants:
    def test_twenty_variants(self):
        variants = generate_variants()
        assert len(variants) == 20
        assert variants[0] == BASE_QUERY
        assert len(set(variants)) == 20

    def test_all_variants_single_identical_plan(self, xmark_engine):
        plans = set()
        for variant in generate_variants():
            compiled = xmark_engine.compile(variant)
            assert compiled.tree_pattern_count() == 1, variant
            plans.add(compiled.canonical_plan())
        assert len(plans) == 1

    def test_all_variants_same_results(self, xmark_engine):
        reference = None
        for variant in generate_variants():
            result = pres(xmark_engine.run(variant))
            if reference is None:
                reference = result
                assert reference, "base query returned nothing"
            assert result == reference, variant

    def test_variants_match_unoptimized_semantics(self, xmark_engine):
        for variant in generate_variants()[:6]:
            optimized = pres(xmark_engine.run(variant))
            unoptimized = pres(xmark_engine.run(variant, optimize=False))
            assert optimized == unoptimized, variant

    def test_without_rewrites_plans_differ(self):
        """The paper: 'on the old engine the generated plans were
        dependent on the syntactic form of the query'."""
        from repro.rewrite import RewriteOptions
        from repro.algebra.optimizer import OptimizerOptions
        engine = Engine(xmark_document(30, seed=21),
                        rewrite_options=RewriteOptions.none(),
                        optimizer_options=OptimizerOptions(
                            enable_tree_patterns=False))
        plans = {engine.compile(variant).canonical_plan()
                 for variant in generate_variants()}
        assert len(plans) > 1


class TestSection2Artifacts:
    def test_q1a_normalized_core_shape(self, people_engine):
        from repro.xqcore import pretty
        compiled = people_engine.compile("$d//person[emailaddress]/name")
        text = pretty(compiled.core)
        # the recognizable pieces of Q1a-n
        assert "ddo(" in text
        assert "fn:count($seq" in text
        assert "typeswitch" in text

    def test_q1a_tpnf_shape(self, people_engine):
        from repro.xqcore import pretty
        compiled = people_engine.compile("$d//person[emailaddress]/name")
        text = pretty(compiled.tpnf)
        assert "typeswitch" not in text
        assert "fn:count" not in text

    def test_p5_shape(self, people_engine):
        compiled = people_engine.compile("$d//person[emailaddress]/name")
        plan = compiled.optimized
        assert not any(isinstance(node, DDOPlan)
                       for node in walk_plan(plan))
        (pattern,) = compiled.tree_patterns()
        assert pattern.to_string().endswith(
            "descendant::person[child::emailaddress]/child::name{out}")
