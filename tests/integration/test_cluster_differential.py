"""Golden corpus through a *real* 4-worker process cluster.

The property suite proves scatter-gather correctness on the inline
transport; this suite repeats the corpus over actual subprocesses —
pipes, pickled frames, mmap-opened shards — and pins the answers to the
recorded golden bytes, so a protocol or remapping bug that only
manifests across the process boundary cannot hide.
"""

from __future__ import annotations

import pytest

from repro.data import member_document, xmark_document
from repro.serve import ClusterLayout, ClusterService

from tests.support.make_golden import (GOLDEN_DIR, golden_queries,
                                       render_results)

_QUERIES = golden_queries()


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cluster-diff")
    layout = ClusterLayout.build(
        {"member": member_document(600, depth=5, tag_count=4,
                                   seed=7).columns,
         "xmark": xmark_document(40, seed=11).columns},
        str(directory), 4)
    service = ClusterService(layout, workers=4)
    yield service
    service.close()


@pytest.mark.parametrize("stem", sorted(_QUERIES))
def test_golden_bytes_through_processes(cluster, stem):
    document = stem.split("_", 1)[0]
    expected = (GOLDEN_DIR / f"{stem}.xml").read_text(encoding="utf-8")
    got = render_results(cluster.query(document, _QUERIES[stem],
                                       timeout=120.0))
    assert got == expected, (
        f"{stem} through the process cluster drifted from the golden "
        f"corpus")


def test_both_modes_exercised(cluster):
    stats = cluster.cluster_stats()
    assert stats.scattered > 0, "no query scattered — planner too strict"
    assert stats.whole_document > 0, "every query scattered — suspicious"
    assert all(worker.alive for worker in stats.workers)
    assert sum(worker.completed for worker in stats.workers) > 0
