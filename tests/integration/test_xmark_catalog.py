"""The adapted XMark query catalog, end to end."""

import pytest

from repro import Engine
from repro.algebra.optimizer import OptimizerOptions
from repro.bench import XMARK_CATALOG, catalog_queries
from repro.data import xmark_document


@pytest.fixture(scope="module")
def engine():
    return Engine(xmark_document(80, seed=5))


def keys(sequence):
    return [getattr(item, "pre", item) for item in sequence]


class TestCatalog:
    def test_catalog_well_formed(self):
        assert len(XMARK_CATALOG) >= 15
        assert all(entry.original.startswith("XMark")
                   for entry in XMARK_CATALOG.values())

    def test_catalog_queries_filter(self):
        with_joins = catalog_queries(include_joins=True)
        without = catalog_queries(include_joins=False)
        assert set(without) < set(with_joins)

    @pytest.mark.parametrize("name", sorted(XMARK_CATALOG))
    def test_strategies_agree(self, engine, name):
        entry = XMARK_CATALOG[name]
        reference = keys(engine.run(entry.query, optimize=False))
        for strategy in ("nljoin", "twigjoin", "scjoin", "cost"):
            assert keys(engine.run(entry.query, strategy=strategy)) \
                == reference, strategy

    @pytest.mark.parametrize("name", sorted(XMARK_CATALOG))
    def test_extensions_agree(self, engine, name):
        entry = XMARK_CATALOG[name]
        extended = Engine(engine.document,
                          optimizer_options=OptimizerOptions(
                              enable_positional=True,
                              enable_multi_output=True))
        reference = keys(engine.run(entry.query, optimize=False))
        assert keys(extended.run(entry.query)) == reference

    def test_most_queries_return_results(self, engine):
        nonempty = 0
        for entry in XMARK_CATALOG.values():
            result = engine.run(entry.query)
            if result and result != [0]:
                nonempty += 1
        assert nonempty >= len(XMARK_CATALOG) - 2

    def test_positional_entry_uses_positional_plan(self, engine):
        entry = XMARK_CATALOG["XQ2"]
        assert entry.positional
        extended = Engine(engine.document,
                          optimizer_options=OptimizerOptions(
                              enable_positional=True))
        plain_count = engine.compile(entry.query).tree_pattern_count()
        extended_count = extended.compile(entry.query).tree_pattern_count()
        assert extended_count < plain_count

    def test_join_entries_keep_selects(self, engine):
        from repro.algebra import Select, walk_plan
        entry = XMARK_CATALOG["XQ1"]
        compiled = engine.compile(entry.query)
        assert any(isinstance(node, Select)
                   for node in walk_plan(compiled.optimized))
