"""Columnar-vs-object differential equivalence.

The columnar store must be *indistinguishable* from the object store:
for the full golden corpus and a seeded grammar-fuzzed workload
(:mod:`tests.support.qgen`), every physical strategy running on a
saved-then-mmap-opened columnar document must serialize byte-identically
to the object-store reference (NLJoin on the unoptimized plan — the
same executable baseline the curated differential suite uses).

``derandomize=True`` keeps the corpus fixed, so together the two fuzz
tests are a seeded regression run of ≥ 200 query/document pairs, each
checked across all 8 strategies.

The compiled backend (:mod:`repro.compiled`) is held to the same bar:
every golden query and every fuzz pair also runs under
``backend="compiled"`` on *both* stores (object and mmap-opened
columnar), byte-identical to the interpreted reference.
"""

import atexit
import os
import tempfile

import pytest
from hypothesis import given, settings

from repro import Engine
from repro.xmltree import IndexedDocument

from tests.support import qgen
from tests.support.make_golden import (GOLDEN_DIR, golden_queries,
                                       reference_engines, render_results)

ALL_STRATEGIES = ("nljoin", "twigjoin", "scjoin", "stacktree",
                  "streaming", "auto", "cost", "item")

_QUERIES = golden_queries()

# Save each reference document once and mmap-open it back, so every
# test in this module exercises the actual persistence path, not just
# the in-memory column build.
_TMP = tempfile.TemporaryDirectory(prefix="repro-columnar-diff-")
atexit.register(_TMP.cleanup)

_OBJECT_ENGINES = reference_engines()
_COLUMNAR_ENGINES = {}
for _name, _engine in _OBJECT_ENGINES.items():
    _path = os.path.join(_TMP.name, f"{_name}.rpxc")
    _engine.document.save(_path)
    _COLUMNAR_ENGINES[_name] = Engine(IndexedDocument.open(_path))


def _assert_columnar_matches(name, query):
    reference = render_results(
        _OBJECT_ENGINES[name].run(query, strategy="nljoin",
                                  optimize=False))
    columnar = _COLUMNAR_ENGINES[name]
    for strategy in ALL_STRATEGIES:
        got = render_results(columnar.run(query, strategy=strategy))
        assert got == reference, (
            f"columnar {strategy} diverged from the object store "
            f"on {query!r} ({name})")
    for store, engines in (("object", _OBJECT_ENGINES),
                           ("columnar", _COLUMNAR_ENGINES)):
        for strategy in ALL_STRATEGIES:
            got = render_results(engines[name].run(query,
                                                   strategy=strategy,
                                                   backend="compiled"))
            assert got == reference, (
                f"compiled backend ({strategy}, {store} store) diverged "
                f"from the interpreted reference on {query!r} ({name})")


class TestGoldenCorpusOnColumnar:
    """Every strategy on the columnar store against the recorded
    golden bytes (the object store is pinned to the same files by
    tests/integration/test_golden.py)."""

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    @pytest.mark.parametrize("stem", sorted(_QUERIES))
    def test_golden_bytes(self, stem, strategy):
        name = stem.split("_", 1)[0]
        expected = (GOLDEN_DIR / f"{stem}.xml").read_text(
            encoding="utf-8")
        got = render_results(
            _COLUMNAR_ENGINES[name].run(_QUERIES[stem],
                                        strategy=strategy))
        assert got == expected, (
            f"{stem} under {strategy} (columnar) drifted from the "
            f"golden corpus")

    def test_documents_opened_from_disk(self):
        for engine in _COLUMNAR_ENGINES.values():
            assert engine.document.store_kind == "columnar"


class TestGoldenCorpusCompiled:
    """The compiled backend against the recorded golden bytes, on both
    stores — byte-identity with the interpreted evaluator is transitive
    through the pinned corpus."""

    @pytest.mark.parametrize("store", ["object", "columnar"])
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    @pytest.mark.parametrize("stem", sorted(_QUERIES))
    def test_golden_bytes_compiled(self, stem, strategy, store):
        engines = (_OBJECT_ENGINES if store == "object"
                   else _COLUMNAR_ENGINES)
        name = stem.split("_", 1)[0]
        expected = (GOLDEN_DIR / f"{stem}.xml").read_text(
            encoding="utf-8")
        got = render_results(
            engines[name].run(_QUERIES[stem], strategy=strategy,
                              backend="compiled"))
        assert got == expected, (
            f"{stem} under {strategy} (compiled, {store}) drifted from "
            f"the golden corpus")


@given(query=qgen.member_queries())
@settings(max_examples=120, deadline=None, derandomize=True)
def test_member_fuzz_columnar_differential(query):
    _assert_columnar_matches("member", query)


@given(query=qgen.xmark_queries())
@settings(max_examples=100, deadline=None, derandomize=True)
def test_xmark_fuzz_columnar_differential(query):
    _assert_columnar_matches("xmark", query)
