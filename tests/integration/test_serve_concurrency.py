"""Concurrency stress: shared engines and the query service under load.

The acceptance bar for the serving layer: with 4+ workers on the seeded
mixed QE1–QE6 workload, every accepted request returns results
*identical* to a sequential run; a full queue sheds with
``ServiceOverloaded`` (and never deadlocks); duplicate in-flight
requests coalesce.  These tests also hammer one bare ``Engine`` from
many threads, which is what makes the PlanCache/summary locking load-
bearing rather than theoretical.
"""

from __future__ import annotations

import threading

import pytest

from repro import Engine, IndexedDocument
from repro.bench.harness import QE_QUERIES
from repro.data import member_document
from repro.guard import ServiceOverloaded
from repro.obs import PlanCache
from repro.serve import (DocumentCatalog, QueryRequest, QueryService,
                         default_catalog, mixed_workload, run_load)

THREADS = 8
ROUNDS = 3


def result_keys(results):
    return tuple(getattr(item, "pre", item) for item in results)


@pytest.fixture(scope="module")
def member_doc() -> IndexedDocument:
    return member_document(1_500, depth=4, tag_count=10, seed=42)


class TestEngineThreadSafety:
    def test_one_engine_hammered_matches_sequential(self, member_doc):
        """N threads × QE1–QE6 on one shared Engine, byte-equal to a
        sequential baseline on a fresh engine."""
        baseline_engine = Engine(member_doc)
        expected = {name: result_keys(baseline_engine.run(query))
                    for name, query in QE_QUERIES.items()}
        shared = Engine(member_doc, plan_cache_size=4)
        failures = []
        barrier = threading.Barrier(THREADS)

        def worker(index: int) -> None:
            barrier.wait()
            for _ in range(ROUNDS):
                for name, query in QE_QUERIES.items():
                    try:
                        got = result_keys(shared.run(query))
                    except Exception as err:   # noqa: BLE001
                        failures.append(f"{name}: raised {err!r}")
                        continue
                    if got != expected[name]:
                        failures.append(f"{name}: diverged")

        threads = [threading.Thread(target=worker, args=(index,))
                   for index in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []
        stats = shared.plan_cache.stats
        assert stats.lookups == stats.hits + stats.misses
        assert len(shared.plan_cache) <= 4

    def test_concurrent_summary_build_is_single(self):
        document = member_document(800, depth=4, tag_count=6, seed=9)
        barrier = threading.Barrier(THREADS)
        summaries = []

        def fetch() -> None:
            barrier.wait()
            summaries.append(document.summary)

        threads = [threading.Thread(target=fetch) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(summaries) == THREADS
        assert all(summary is summaries[0] for summary in summaries)

    def test_plan_cache_concurrent_mutation_stays_bounded(self):
        cache = PlanCache(max_size=8)
        barrier = threading.Barrier(THREADS)

        def worker(index: int) -> None:
            barrier.wait()
            for round_number in range(200):
                key = (index * 7 + round_number) % 24
                if cache.get(key) is None:
                    cache.put(key, object())

        threads = [threading.Thread(target=worker, args=(index,))
                   for index in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = cache.stats
        assert len(cache) <= 8
        assert stats.lookups == THREADS * 200
        assert stats.evictions >= 1


class TestServiceUnderLoad:
    def test_mixed_workload_differential(self):
        """4 workers, 8 closed-loop clients, seeded QE1–QE6 + XMark mix:
        zero mismatches against the sequential baseline, and the
        coalescing burst registers hits."""
        service = QueryService(
            default_catalog(member_nodes=1_200, xmark_persons=20, seed=5),
            workers=4, queue_limit=256)
        try:
            report = run_load(service, concurrency=8,
                              requests_per_client=10, seed=5)
        finally:
            service.close()
        assert report.mismatches == 0
        assert report.errors == 0
        assert report.shed == 0
        assert report.succeeded == report.attempted
        assert report.coalesced >= 1
        stats = report.stats
        assert stats.completed == stats.accepted
        assert stats.latency_p50 <= stats.latency_p95 <= stats.latency_p99

    def test_full_queue_sheds_and_never_deadlocks(self, member_doc):
        """Far more offered load than a tiny queue can hold: some
        requests shed with ServiceOverloaded, everything else completes,
        and close() returns (no deadlock)."""
        catalog = DocumentCatalog()
        catalog.add_document("member", member_doc)
        query = QE_QUERIES["QE4"]
        expected = result_keys(catalog.engine("member").run(query))
        service = QueryService(catalog, workers=2, queue_limit=2)
        shed = []
        mismatches = []

        def client(index: int) -> None:
            # Distinct query texts per client defeat coalescing, so the
            # tiny queue genuinely fills.
            variant = list(QE_QUERIES.values())[index % len(QE_QUERIES)]
            reference = result_keys(
                catalog.engine("member").run(variant))
            for _ in range(6):
                try:
                    results = service.query("member", variant)
                except ServiceOverloaded:
                    shed.append(index)
                    continue
                if result_keys(results) != reference:
                    mismatches.append(variant)

        threads = [threading.Thread(target=client, args=(index,))
                   for index in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        service.close()
        stats = service.stats()
        assert mismatches == []
        assert stats.shed == len(shed)
        assert stats.completed + stats.failed == stats.accepted
        # every accepted request got an answer; nothing is stuck
        assert stats.queue_depth == 0
        assert stats.in_flight == 0
        # sanity: the reference results exist
        assert expected

    def test_deadline_storm_fails_cleanly(self):
        """Sub-millisecond deadlines under queueing: expired requests
        fail with the wall budget error, the rest still verify."""
        service = QueryService(
            default_catalog(member_nodes=1_000, xmark_persons=15, seed=3),
            workers=2, queue_limit=256)
        try:
            report = run_load(service, concurrency=8,
                              requests_per_client=6, seed=3,
                              timeout=5e-4, coalesce_burst=0)
        finally:
            service.close()
        stats = report.stats
        assert report.mismatches == 0
        assert stats.deadline_expired >= 1
        assert stats.deadline_expired <= stats.failed
        assert report.succeeded + report.errors + report.shed \
            == report.attempted

    def test_workload_is_deterministic(self):
        first = mixed_workload(seed=11)
        second = mixed_workload(seed=11)
        other = mixed_workload(seed=12)
        assert first == second
        assert first != other
        documents = {request.document for request in first}
        assert documents == {"member", "xmark"}
