"""Golden checks: the exact artifacts the paper prints for Q1a.

These pin the concrete output of each phase against the paper's
figures (Section 2's Q1a-n, Q1-tp, P1 and P5), modulo the variable
numbering our pretty-printers make explicit.
"""

import textwrap

from repro import Engine
from repro.algebra import plan_to_string
from repro.xqcore import pretty

ENGINE = Engine.from_xml("<site><person><emailaddress/>"
                         "<name>J</name></person></site>")

Q1A = "$d//person[emailaddress]/name"


class TestQ1aArtifacts:
    def compiled(self):
        return ENGINE.compile(Q1A)

    def test_normalized_core_matches_q1a_n(self):
        """The paper's Q1a-n, line for line (our printer's rendering)."""
        text = pretty(self.compiled().core)
        # Line 1: the outer ddo.
        assert text.startswith("ddo(")
        # Lines 4-6 of the paper: let $seq := ddo($d), $last := count,
        # for $dot at $position.
        assert "ddo($d)" in text
        assert "let $last := fn:count($seq2)" in text
        assert "for $dot at $position in $seq2" in text
        # Lines 11-16: the predicate typeswitch.
        assert "typeswitch (ddo(child::emailaddress))" in text
        assert "case $v as numeric() return $position2 = $v" in text
        assert "default $v2 return fn:boolean($v2)" in text
        # Line 20: the final step.
        assert "child::name" in text

    def test_tpnf_matches_q1_tp(self):
        """The paper's Q1-tp: nested for loops, single outer ddo."""
        text = pretty(self.compiled().tpnf)
        expected = textwrap.dedent("""\
            ddo(
              for $dot in for $dot2 in $d/descendant::person where fn:boolean(child::emailaddress) return $dot2
              return
                child::name)""")
        assert text == expected

    def test_raw_plan_matches_p1(self):
        """The paper's P1: maps, TreeJoins, Select, outer fs:ddo."""
        text = plan_to_string(self.compiled().plan)
        for fragment in (
                "fs:ddo(MapToItem{TreeJoin[child::name](IN#dot2)}",
                "MapFromItem{[dot2 : IN]}",
                "Select{fn:boolean(TreeJoin[child::emailaddress](IN#dot))}",
                "MapFromItem{[dot : IN]}",
                "TreeJoin[descendant::person]($d)"):
            assert fragment in text, fragment

    def test_optimized_plan_matches_p5(self):
        """The paper's P5: one TupleTreePattern, no ddo, no TreeJoin."""
        text = plan_to_string(self.compiled().optimized)
        expected = textwrap.dedent("""\
            MapToItem{IN#out}
              TupleTreePattern
                [IN#dot3/descendant::person[child::emailaddress]/child::name{out}]
                MapFromItem{[dot3 : IN]}($d)""")
        assert text == expected

    def test_q2_plan_shape(self):
        """The paper's Q2 plan: two patterns around a value Select (our
        pipeline keeps the outer ddo — see DESIGN.md deviation 2)."""
        compiled = ENGINE.compile('$d//person[name = "John"]/emailaddress')
        text = plan_to_string(compiled.optimized)
        select_position = text.index("Select{")
        first_ttp = text.index("TupleTreePattern")
        assert first_ttp < select_position
        assert "[IN#dot/child::emailaddress{out}]" in text
        assert 'TupleTreePattern\n    [IN#dot/child::name{out1}]\n    IN' \
            in text
        assert "descendant::person{dot}" in text

    def test_section_41_example(self):
        """The multi-output semantics example from Section 4.1."""
        from repro.algebra import (EvalContext, MapFromItem,
                                   TupleTreePattern, VarPlan, eval_tuples)
        from repro.pattern import parse_pattern
        from repro.physical import NLJoin
        from repro.xmltree import IndexedDocument
        from repro.xqcore import fresh_var

        doc = IndexedDocument.from_string(
            '<r><a><c id="1"><d id="2"/><d id="3"/></c></a>'
            '<a><c/><e/></a>'
            '<a><c id="4"><d id="5"/></c><c id="6"/></a></r>')
        var = fresh_var("seq", origin="external")
        context = EvalContext(document=doc, strategy=NLJoin())
        context.globals[var] = list(doc.stream("a"))
        pattern = parse_pattern(
            "IN#x/descendant-or-self::a/child::c{y}[@id]/child::d{z}")
        plan = TupleTreePattern(pattern, MapFromItem("x", VarPlan(var)))
        tuples = eval_tuples(plan, context)
        # Paper: tuple 1 matches twice, tuple 2 not at all, tuple 3 once.
        ids = [(t["y"][0].get_attribute("id"), t["z"][0].get_attribute("id"))
               for t in tuples]
        assert ids == [("1", "2"), ("1", "3"), ("4", "5")]
