"""When does each tree-pattern algorithm win?  (Paper Section 5.)

Reproduces the paper's three findings on live workloads:

1. rooted, unselective paths: the index-based algorithms beat
   navigation (Table 1's setting);
2. complex branching patterns: TwigJoin stays well-behaved while
   SCJoin's multi-pass evaluation degrades;
3. highly selective positional chains (``(/t1[1])^k``): navigation wins
   by orders of magnitude (Section 5.3's setting) — and the AUTO
   heuristic picks the right algorithm in each regime.

Run with::

    python examples/algorithm_selection.py
"""

import time

from repro import Engine
from repro.data import deep_member_document, member_document


def measure(engine, compiled, strategy, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        engine.execute(compiled, strategy=strategy)
        best = min(best, time.perf_counter() - start)
    return best


def report(title, engine, query):
    compiled = engine.compile(query)
    print(f"\n== {title} ==")
    print(f"   {query}")
    times = {strategy: measure(engine, compiled, strategy)
             for strategy in ("nljoin", "twigjoin", "scjoin", "streaming",
                              "cost")}
    winner = min(times, key=times.get)
    for strategy, seconds in times.items():
        marker = "  <-- fastest" if strategy == winner else ""
        print(f"   {strategy:>8}: {seconds * 1000:8.3f} ms{marker}")


def main() -> None:
    print("generating documents ...")
    flat = Engine(member_document(15_000, depth=4, tag_count=100))
    deep = Engine(deep_member_document(20_000, depth=15))

    report("1. rooted unselective path (index algorithms win)", flat,
           "$input/desc::t01/child::t02")
    report("2. complex branching pattern (TwigJoin robust)", flat,
           "$input/desc::t01[desc::t02[desc::t03]/desc::t04[desc::t03]]")
    report("3. selective positional chain (navigation wins)", deep,
           "/" + "/".join(["t1[1]"] * 10))

    print("\nThe paper's conclusion: 'There is no single best algorithm "
          "for evaluating\ntree pattern operators in a query plan' — "
          "hence the 'cost' strategy,\nwhich consults a per-evaluation "
          "cost model (repro.physical.cost).")


if __name__ == "__main__":
    main()
