"""Walk the paper's Figure 1 queries through every compilation phase.

Shows, for each of Q1a/Q1b/Q1c/Q2/Q5:

* the normalized XQuery Core (the paper's Q1a-n),
* the TPNF' form after the Section 3 rewritings,
* the raw algebraic plan (the paper's P1),
* the optimized plan with detected TupleTreePattern operators (P5),

and demonstrates that Q1a/Q1b/Q1c converge to the identical plan while
Q5 (which may not return nodes in document order) stays split in two
patterns.

Run with::

    python examples/compilation_pipeline.py
"""

from repro import Engine

DOCUMENT = """
<site><people>
  <person><name>John</name><emailaddress>john@x</emailaddress></person>
  <person><name>Mary</name></person>
</people></site>
"""

FIGURE_1 = {
    "Q1a": '$d//person[emailaddress]/name',
    "Q1b": '(for $x in $d//person[emailaddress] return $x)/name',
    "Q1c": ('let $x := (for $y in $d//person where $y/emailaddress '
            'return $y) return $x/name'),
    "Q2": '$d//person[name = "John"]/emailaddress',
    "Q3": '$d//person[1]/name',
    "Q5": 'for $x in $d//person[emailaddress] return $x/name',
}


def main() -> None:
    engine = Engine.from_xml(DOCUMENT)

    print("#" * 70)
    print("# Full pipeline for Q1a (compare with the paper's Section 2)")
    print("#" * 70)
    print(engine.compile(FIGURE_1["Q1a"]).explain())

    print()
    print("#" * 70)
    print("# Tree patterns detected for each Figure 1 query")
    print("#" * 70)
    compiled = {name: engine.compile(query)
                for name, query in FIGURE_1.items()}
    for name, unit in compiled.items():
        patterns = ", ".join(p.to_string() for p in unit.tree_patterns())
        print(f"{name}: {unit.tree_pattern_count()} pattern(s)  {patterns}")

    print()
    print("Q1a/Q1b/Q1c produce the identical plan:",
          len({compiled[name].canonical_plan()
               for name in ("Q1a", "Q1b", "Q1c")}) == 1)
    print("Q5 differs from Q1a (document-order semantics):",
          compiled["Q5"].canonical_plan() != compiled["Q1a"].canonical_plan())

    print()
    print("#" * 70)
    print("# And they all evaluate consistently")
    print("#" * 70)
    for name, unit in compiled.items():
        values = [item.string_value() for item in engine.execute(unit)]
        print(f"{name}: {values}")


if __name__ == "__main__":
    main()
