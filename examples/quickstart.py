"""Quickstart: load a document, run queries, inspect the detected plan.

Run with::

    python examples/quickstart.py
"""

from repro import Engine

CATALOG = """
<catalog>
  <book year="2003"><title>XQuery from the Experts</title>
    <author>Katz</author><price>55</price></book>
  <book year="2002"><title>Holistic Twig Joins</title>
    <author>Bruno</author><author>Koudas</author><price>15</price></book>
  <book year="2004"><title>Staircase Join</title>
    <author>Grust</author><price>20</price></book>
  <journal year="2007"><title>Put a Tree Pattern in Your Algebra</title>
    <author>Michiels</author></journal>
</catalog>
"""


def main() -> None:
    engine = Engine.from_xml(CATALOG)

    print("== All book titles (simple path) ==")
    for title in engine.run("$input//book/title"):
        print(" -", title.string_value())

    print("\n== Books with more than one author (predicate) ==")
    for title in engine.run("$input//book[author[2]]/title"):
        print(" -", title.string_value())

    print("\n== Cheap books, FLWOR spelling ==")
    query = ("for $b in $input//book "
             "where $b/price < 30 "
             "return $b/title")
    for title in engine.run(query):
        print(" -", title.string_value())

    print("\n== The same query under each tree-pattern algorithm ==")
    for strategy in ("nljoin", "twigjoin", "scjoin", "auto"):
        titles = [t.string_value()
                  for t in engine.run(query, strategy=strategy)]
        print(f" {strategy:>8}: {titles}")

    print("\n== What the optimizer detected ==")
    compiled = engine.compile("$input//book[author]/title")
    print(f" {compiled.tree_pattern_count()} tree pattern(s):")
    for pattern in compiled.tree_patterns():
        print("  ", pattern.to_string())


if __name__ == "__main__":
    main()
