"""Auction-site analytics on an XMark-style document.

The workload the paper's introduction motivates: data-intensive XML
queries over an auction site, where tree-pattern detection decides
whether the fast structural-join algorithms can be used.  Compares the
three algorithms and the heuristic chooser on each query.

Run with::

    python examples/xmark_analytics.py [persons]
"""

import sys
import time

from repro import Engine
from repro.data import xmark_document

QUERIES = [
    ("registered bidders",
     "count($input//bidder)"),
    ("reachable people with email",
     "$input//person[emailaddress]/name"),
    ("interests of profiled people",
     "$input/site/people/person[emailaddress]/profile/interest"),
    ("auctions with at least two bids",
     "for $a in $input//open_auction where $a/bidder[2] "
     "return $a/itemref/@item"),
    ("items for sale in categorized listings",
     "$input//item[incategory][payment]/name"),
    ("sellers of featured auctions",
     'for $a in $input//open_auction where $a/type = "Featured" '
     "return $a/seller/@person"),
]


def main() -> None:
    persons = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    print(f"generating XMark-style document with {persons} persons ...")
    engine = Engine(xmark_document(persons))

    for label, query in QUERIES:
        compiled = engine.compile(query)
        print(f"\n== {label} ==")
        print(f"   query: {query}")
        print(f"   tree patterns detected: {compiled.tree_pattern_count()}")
        reference = None
        for strategy in ("nljoin", "twigjoin", "scjoin", "auto"):
            start = time.perf_counter()
            result = engine.execute(compiled, strategy=strategy)
            elapsed = time.perf_counter() - start
            keys = [getattr(item, "pre", item) for item in result]
            if reference is None:
                reference = keys
            status = "ok" if keys == reference else "MISMATCH"
            print(f"   {strategy:>8}: {len(result):4d} results "
                  f"in {elapsed * 1000:7.2f} ms  [{status}]")


if __name__ == "__main__":
    main()
