"""E8/E11 — the serving layer under closed-loop load (docs/SERVING.md).

Drives :class:`repro.serve.QueryService` with the seeded mixed QE1–QE6 +
XMark workload at increasing client counts and reports throughput and
latency percentiles.  Every response is differentially checked against a
sequential baseline, so this doubles as a concurrency correctness run;
any mismatch raises.

Closed-loop clients adapt their offered load to service capacity, so
throughput should rise until the worker pool saturates (around
``clients ≈ workers`` on a GIL-bound interpreter, where extra clients
only add queueing latency).

**E11** (:func:`generate_chaos_table`, docs/ROBUSTNESS.md) re-runs the
same load with a fault injected at ``serve.execute`` at increasing
rates, with retries and the per-document circuit breaker toggled, and
reports availability.  Invariants checked per cell: zero bare
(non-:class:`~repro.guard.ReproError`) failures and zero mismatches —
every success is byte-identical to the fault-free baseline.
"""

from __future__ import annotations

import os
from typing import List, Sequence, Tuple

from repro.serve import (ChaosCell, ClusterService, ClusterStats,
                         LoadReport, QueryService, default_catalog,
                         run_chaos_sweep, run_load)

CLIENT_LEVELS = (1, 2, 4, 8, 16)
WORKERS = 4
QUEUE_LIMIT = 256
REQUESTS_PER_CLIENT = 30
SEED = 7


def run_levels(levels: Sequence[int] = CLIENT_LEVELS,
               workers: int = WORKERS,
               queue_limit: int = QUEUE_LIMIT,
               requests_per_client: int = REQUESTS_PER_CLIENT,
               seed: int = SEED) -> List[LoadReport]:
    reports = []
    for level in levels:
        # A fresh catalog/service per level: no cross-level plan-cache
        # warmth, identical starting state for every row.
        service = QueryService(default_catalog(seed=seed),
                               workers=workers, queue_limit=queue_limit)
        try:
            report = run_load(service, concurrency=level,
                              requests_per_client=requests_per_client,
                              seed=seed)
        finally:
            service.close()
        if report.mismatches or report.errors:
            raise AssertionError(
                f"load run at {level} clients saw "
                f"{report.mismatches} mismatches / {report.errors} errors:"
                f"\n{report.report()}")
        reports.append(report)
    return reports


def render_reports(reports: Sequence[LoadReport]) -> str:
    header = (f"{'clients':>8}{'qps':>10}{'p50 ms':>10}{'p95 ms':>10}"
              f"{'p99 ms':>10}{'shed':>7}{'coalesced':>11}")
    lines = [f"{WORKERS} workers, queue limit {QUEUE_LIMIT}, "
             f"{REQUESTS_PER_CLIENT} requests/client, seed {SEED}",
             header]
    for report in reports:
        row = report.row()
        lines.append(f"{report.concurrency:>8}{row['qps']:>10.1f}"
                     f"{row['p50_ms']:>10.3f}{row['p95_ms']:>10.3f}"
                     f"{row['p99_ms']:>10.3f}{report.shed:>7}"
                     f"{report.coalesced:>11}")
    return "\n".join(lines)


def generate_table() -> str:
    return render_reports(run_levels())


CHAOS_RATES = (0.0, 0.01, 0.05, 0.10)
CHAOS_REQUESTS_PER_CLIENT = 20


def run_chaos_grid(rates: Sequence[float] = CHAOS_RATES,
                   requests_per_client: int = CHAOS_REQUESTS_PER_CLIENT,
                   seed: int = SEED) -> List[ChaosCell]:
    cells = run_chaos_sweep(rates=rates,
                            requests_per_client=requests_per_client,
                            seed=seed)
    for cell in cells:
        report = cell.report
        if report.mismatches or report.bare_errors:
            raise AssertionError(
                f"chaos cell rate={cell.rate} retry={cell.retry} "
                f"breaker={cell.breaker} broke the resilience contract: "
                f"{report.mismatches} mismatches / "
                f"{report.bare_errors} bare errors:\n{report.report()}")
    return cells


def render_chaos_cells(cells: Sequence[ChaosCell]) -> str:
    header = (f"{'rate %':>7}{'retry':>7}{'breaker':>9}"
              f"{'avail %':>9}{'retried':>9}{'errors':>8}"
              f"{'breaker_rej':>13}{'mismatch':>10}")
    lines = [f"fault: raise at serve.execute, "
             f"{CHAOS_REQUESTS_PER_CLIENT} requests/client, seed {SEED}",
             header]
    for cell in cells:
        row = cell.row()
        lines.append(
            f"{row['rate_pct']:>7.1f}{row['retry']:>7}"
            f"{row['breaker']:>9}{row['availability_pct']:>9.2f}"
            f"{row['retried']:>9}{row['errors']:>8}"
            f"{cell.report.stats.breaker_rejected:>13}"
            f"{row['mismatches']:>10}")
    return "\n".join(lines)


def generate_chaos_table() -> str:
    return render_chaos_cells(run_chaos_grid())


WORKER_LEVELS = (1, 2, 4, 8)
CLUSTER_CLIENTS = 8
CLUSTER_SHARDS = 4
#: the multi-process speedup the scaling claim asserts at 4 workers —
#: only meaningful when the machine actually has the cores.
CLUSTER_SPEEDUP_FLOOR = 2.0


def run_cluster_levels(
        levels: Sequence[int] = WORKER_LEVELS,
        shard_count: int = CLUSTER_SHARDS,
        requests_per_client: int = REQUESTS_PER_CLIENT,
        seed: int = SEED) -> List[Tuple[int, LoadReport, ClusterStats]]:
    """E13: the same differentially-checked mixed load against the
    multi-process sharded cluster at increasing worker counts."""
    rows = []
    for level in levels:
        service = ClusterService.from_catalog(
            default_catalog(seed=seed), workers=level,
            shard_count=shard_count, queue_limit=QUEUE_LIMIT)
        try:
            report = run_load(service, concurrency=CLUSTER_CLIENTS,
                              requests_per_client=requests_per_client,
                              seed=seed)
            stats = service.cluster_stats()
        finally:
            service.close()
        if report.mismatches or report.errors:
            raise AssertionError(
                f"cluster run at {level} workers saw "
                f"{report.mismatches} mismatches / {report.errors} "
                f"errors:\n{report.report()}")
        rows.append((level, report, stats))
    return rows


def render_cluster_rows(
        rows: Sequence[Tuple[int, LoadReport, ClusterStats]]) -> str:
    base_qps = rows[0][1].row()["qps"] if rows else 0.0
    header = (f"{'workers':>8}{'qps':>10}{'speedup':>9}{'p50 ms':>10}"
              f"{'p95 ms':>10}{'scattered':>11}{'whole':>7}")
    lines = [f"process cluster, {CLUSTER_SHARDS} shards/document, "
             f"{CLUSTER_CLIENTS} clients, seed {SEED} "
             f"(host cores: {os.cpu_count()})",
             header]
    for level, report, stats in rows:
        row = report.row()
        speedup = row["qps"] / base_qps if base_qps else 0.0
        lines.append(f"{level:>8}{row['qps']:>10.1f}{speedup:>9.2f}"
                     f"{row['p50_ms']:>10.3f}{row['p95_ms']:>10.3f}"
                     f"{stats.scattered:>11}{stats.whole_document:>7}")
    by_level = {level: report for level, report, _stats in rows}
    if 1 in by_level and 4 in by_level:
        speedup = by_level[4].row()["qps"] / by_level[1].row()["qps"]
        if (os.cpu_count() or 1) >= 4:
            assert speedup >= CLUSTER_SPEEDUP_FLOOR, (
                f"4-worker cluster reached only {speedup:.2f}x over one "
                f"worker (floor {CLUSTER_SPEEDUP_FLOOR}x)")
            lines.append(f"speedup at 4 workers: {speedup:.2f}x "
                         f"(floor {CLUSTER_SPEEDUP_FLOOR}x: ok)")
        else:
            lines.append(f"speedup at 4 workers: {speedup:.2f}x "
                         f"(floor not asserted: host has "
                         f"{os.cpu_count()} cores)")
    return "\n".join(lines)


def generate_cluster_table() -> str:
    return render_cluster_rows(run_cluster_levels())


if __name__ == "__main__":
    print(generate_table())
    print()
    print(generate_chaos_table())
    print()
    print(generate_cluster_table())
