"""Figure 4: a path expression written as a FLWOR, with and without the
rewrites.

The paper's Figure 4 plots evaluation time of the Section 5.1 query —
``$input/site/people/person[emailaddress]/profile/interest`` spelled as
a FLWOR — on the old engine (no tree-pattern detection) versus the new
engine, across document sizes: with the rewrites, every syntactic
variant collapses to the same single ``TupleTreePattern`` plan and runs
uniformly faster; without them, plans (and times) depend on the query's
syntactic form.

Run styles:

* ``pytest benchmarks/bench_figure4.py --benchmark-only``;
* ``python benchmarks/bench_figure4.py`` — prints the size series for
  both engines, plus the plan-count evidence.
"""

from __future__ import annotations

import pytest

from repro import Engine
from repro.algebra.optimizer import OptimizerOptions
from repro.bench import generate_variants, render_table, scaled, time_call
from repro.data import xmark_document
from repro.rewrite import RewriteOptions

#: the FLWOR spelling used for the timed series (variant with every join
#: as a for clause and a where clause — the farthest from a plain path).
FLWOR_VARIANT = ("for $x1 in $input/site for $x2 in $x1/people "
                 "for $x3 in $x2/person where $x3/emailaddress "
                 "return $x3/profile/interest")


def _new_engine(document) -> Engine:
    return Engine(document)


def _old_engine(document) -> Engine:
    """The 'standard engine (with no TupleTreePattern operator)'."""
    return Engine(document,
                  rewrite_options=RewriteOptions.none(),
                  optimizer_options=OptimizerOptions(
                      enable_tree_patterns=False))


@pytest.mark.parametrize("mode", ["with-rewrites", "without-rewrites"])
def test_figure4(benchmark, xmark_documents, mode):
    largest = max(xmark_documents)
    document = xmark_documents[largest]
    engine = (_new_engine if mode == "with-rewrites" else _old_engine)(
        document)
    plan = engine.compile(FLWOR_VARIANT)
    benchmark.extra_info["tree_patterns"] = plan.tree_pattern_count()
    benchmark.extra_info["persons"] = largest
    benchmark(lambda: engine.execute(plan))


def generate_figure(person_counts=None, repeats=3) -> str:
    person_counts = person_counts or [scaled(60, 10), scaled(120, 20),
                                      scaled(180, 30), scaled(240, 40),
                                      scaled(300, 50)]
    cells = {}
    rows = []
    for mode, factory in (("rewrites on", _new_engine),
                          ("rewrites off", _old_engine)):
        for variant_index, variant in enumerate(generate_variants()[:4]):
            row = f"{mode} v{variant_index}"
            rows.append(row)
            for count in person_counts:
                engine = factory(xmark_document(count, seed=19992001))
                plan = engine.compile(variant)
                seconds = time_call(lambda e=engine, p=plan: e.execute(p),
                                    repeats=repeats)
                cells[(row, f"{count}p")] = seconds
    columns = [f"{count}p" for count in person_counts]
    table = render_table(
        "Figure 4. FLWOR-spelled path, with and without the rewrites",
        rows, columns, cells)
    # The structural claim behind the figure:
    engine = _new_engine(xmark_document(person_counts[0], seed=19992001))
    counts = {engine.compile(v).tree_pattern_count()
              for v in generate_variants()}
    old = _old_engine(xmark_document(person_counts[0], seed=19992001))
    old_plans = {old.compile(v).canonical_plan()
                 for v in generate_variants()}
    new_plans = {engine.compile(v).canonical_plan()
                 for v in generate_variants()}
    summary = (f"\nnew engine: {sorted(counts)} TupleTreePattern(s) per "
               f"variant, {len(new_plans)} distinct plan(s) over 20 "
               f"variants\nold engine: {len(old_plans)} distinct plan(s) "
               f"over 20 variants")
    return table + summary


if __name__ == "__main__":
    print(generate_figure())
