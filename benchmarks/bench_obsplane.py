"""E14 — distributed-tracing overhead on the cluster path
(docs/OBSPLANE.md).

Times a scattered cluster request three ways on an inline-transport
cluster (same frame codec and worker code as subprocesses, none of the
pipe-scheduling noise):

* **untraced** — no tracer on the coordinator: no context rides the
  task frames, workers never touch their tracers;
* **disabled** — a ``Tracer(enabled=False)`` wired in: ``begin``
  returns ``None``, so no context is attached and the request must run
  at untraced speed.  This is the price of *having* the telemetry
  plane compiled in but switched off — it must sit within timing
  noise;
* **traced** — full distributed capture: context propagation, a live
  worker trace per shard task, span-buffer packing onto the result
  frame, and coordinator-side stitching (graft + op-stat merge).

The traced budget is per-request: stitched capture adds a bounded
constant per shard task (worker trace + ``pack_trace`` + graft, all
linear in span count) on top of E9's per-span cost.  Assertions mirror
``bench_trace.check_overheads``: ratio once requests do real work, an
absolute floor so scaled-down CI documents don't demand sub-noise
timings.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.bench import scaled, time_call
from repro.data import xmark_document
from repro.serve import ClusterLayout, ClusterService
from repro.trace import FlightRecorder, Tracer

#: XMark person count at scale 1.0 (document scatters into 4 shards).
BASE_PERSONS = 60

#: the scattered request under test.
QUERY = "$input//person/name"

#: requests per timed batch; per-request numbers divide by this.
REQUESTS = 8

REPEATS = 5

#: disabled-mode aggregate must sit within timing noise of untraced.
DISABLED_TOLERANCE = 0.10

#: absolute floor per request for the disabled mode: one ``begin``
#: call returning ``None`` plus one ``is None`` test per task.
DISABLED_FLOOR_SECONDS = 100e-6

#: full distributed capture may cost this fraction of untraced time.
TRACED_TOLERANCE = 0.30

#: absolute per-request floor for the traced mode: a worker trace per
#: shard (~20 spans each), wire packing, grafting and op-stat merging
#: are all pure-Python constants dominated by span capture (E9 measures
#: ~4 us per span; a scattered request stitches ~60–80 spans).
TRACED_FLOOR_SECONDS = 4e-3


def _build(directory: str, persons: int, tracer: Optional[Tracer],
           flight: Optional[FlightRecorder]) -> ClusterService:
    layout = ClusterLayout.build(
        {"xmark": xmark_document(persons, seed=20070415).columns},
        directory, 4)
    return ClusterService(layout, workers=4, transport="inline",
                          tracer=tracer, flight_recorder=flight)


def measure(persons: Optional[int] = None,
            repeats: int = REPEATS) -> Dict[str, float]:
    """Best-of-N seconds per batch of ``REQUESTS`` scattered requests,
    one entry per mode, plus the stitched span count."""
    import tempfile

    persons = persons or scaled(BASE_PERSONS, minimum=12)
    results: Dict[str, float] = {}
    modes: Dict[str, Callable[[], Optional[Tracer]]] = {
        "untraced": lambda: None,
        "disabled": lambda: Tracer(enabled=False),
        "traced": lambda: Tracer(),
    }
    for mode, make_tracer in modes.items():
        with tempfile.TemporaryDirectory() as directory:
            tracer = make_tracer()
            flight = FlightRecorder() if mode == "traced" else None
            service = _build(directory, persons, tracer, flight)
            try:
                # Warm the per-worker engine caches out of the timing.
                service.query("xmark", QUERY, timeout=120.0)

                def batch() -> None:
                    for _ in range(REQUESTS):
                        service.query("xmark", QUERY, timeout=120.0)

                results[mode] = time_call(batch, repeats=repeats)
                if mode == "traced":
                    trace = service.flight_recorder().recent[-1].trace
                    results["spans"] = float(len(trace.spans))
            finally:
                service.close()
    return results


def check_overheads(results: Dict[str, float]) -> Dict[str, float]:
    """Assert the per-request overhead budget; return the ratios."""
    untraced = results["untraced"]
    disabled_extra = results["disabled"] - untraced
    traced_extra = results["traced"] - untraced
    disabled_budget = max(DISABLED_TOLERANCE * untraced,
                          DISABLED_FLOOR_SECONDS * REQUESTS)
    traced_budget = max(TRACED_TOLERANCE * untraced,
                        TRACED_FLOOR_SECONDS * REQUESTS)
    assert disabled_extra <= disabled_budget, (
        f"disabled distributed tracing costs "
        f"{disabled_extra / REQUESTS * 1e6:.0f} us per request over "
        f"baseline (budget {disabled_budget / REQUESTS * 1e6:.0f} us) "
        f"— the no-context fast path is no longer free")
    assert traced_extra <= traced_budget, (
        f"distributed capture costs "
        f"{traced_extra / REQUESTS * 1e6:.0f} us per request over "
        f"baseline (budget {traced_budget / REQUESTS * 1e6:.0f} us)")
    return {"disabled": disabled_extra / untraced,
            "traced": traced_extra / untraced}


def render(results: Dict[str, float], ratios: Dict[str, float]) -> str:
    per_request = {mode: results[mode] / REQUESTS
                   for mode in ("untraced", "disabled", "traced")}
    lines = [
        f"Distributed tracing on a 4-shard inline cluster "
        f"({QUERY!r}, best of {REPEATS}, {REQUESTS} requests/batch)",
        f"{'mode':>10}{'s/request':>12}{'vs untraced':>13}",
    ]
    for mode in ("untraced", "disabled", "traced"):
        delta = per_request[mode] - per_request["untraced"]
        lines.append(f"{mode:>10}{per_request[mode]:>12.6f}"
                     f"{delta * 1e3:>+11.3f}ms")
    lines.append(
        f"stitched spans/request: {results.get('spans', 0):.0f}; "
        f"aggregate: disabled {ratios['disabled']:+.1%}, traced "
        f"{ratios['traced']:+.1%} of baseline (budgets "
        f"{DISABLED_TOLERANCE:.0%}/{DISABLED_FLOOR_SECONDS * 1e6:.0f}us"
        f" and {TRACED_TOLERANCE:.0%}/"
        f"{TRACED_FLOOR_SECONDS * 1e3:.0f}ms per request)")
    return "\n".join(lines)


def generate_table() -> str:
    results = measure()
    ratios = check_overheads(results)
    return render(results, ratios)


if __name__ == "__main__":
    print(generate_table())
