"""The Section 7 extensions, measured.

Three mini-studies beyond the paper's evaluation:

1. **Positional tree patterns** — QE2/QE5 (whose positional predicates
   the paper leaves outside the fragment) with the rule (g) extension on
   vs off: folding ``[1]`` into the pattern removes the per-context
   pattern-call overhead.
2. **Streaming XPath** — the one-pass matcher against the three paper
   algorithms on rooted XMark paths.
3. **Cost-based choice** — the cost model's pick against every fixed
   algorithm across the three regimes of Section 5.

Run styles:

* ``pytest benchmarks/bench_extensions.py --benchmark-only``;
* ``python benchmarks/bench_extensions.py``.
"""

from __future__ import annotations

import pytest

from repro import Engine
from repro.algebra.optimizer import OptimizerOptions
from repro.bench import QE_QUERIES, render_table, scaled, time_call
from repro.data import deep_member_document, member_document, xmark_document

POSITIONAL_QUERIES = {name: QE_QUERIES[name] for name in ("QE2", "QE5")}

ALL_STRATEGIES = ["nljoin", "twigjoin", "scjoin", "streaming", "cost"]


@pytest.fixture(scope="module")
def member_engines(table1_documents):
    document = table1_documents[max(table1_documents)]
    return {
        "plain": Engine(document),
        "positional": Engine(document, optimizer_options=OptimizerOptions(
            enable_positional=True)),
    }


@pytest.mark.parametrize("mode", ["plain", "positional"])
@pytest.mark.parametrize("query_name", sorted(POSITIONAL_QUERIES))
def test_positional_extension(benchmark, member_engines, query_name, mode):
    engine = member_engines[mode]
    plan = engine.compile(POSITIONAL_QUERIES[query_name])
    benchmark.extra_info["tree_patterns"] = plan.tree_pattern_count()
    benchmark(lambda: engine.execute(plan, strategy="twigjoin"))


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
def test_strategy_spectrum(benchmark, xmark_engine, strategy):
    plan = xmark_engine.compile(
        "$input/site/people/person[emailaddress]/profile/interest")
    benchmark(lambda: xmark_engine.execute(plan, strategy=strategy))


def generate_positional_table(node_count=None, repeats=3) -> str:
    node_count = node_count or scaled(20_000)
    document = member_document(node_count, depth=4, tag_count=100,
                               seed=20070415)
    engines = {
        "off": Engine(document),
        "on": Engine(document, optimizer_options=OptimizerOptions(
            enable_positional=True)),
    }
    cells = {}
    rows = []
    for query_name, query in sorted(POSITIONAL_QUERIES.items()):
        for mode, engine in engines.items():
            plan = engine.compile(query)
            row = f"{query_name} positional={mode}"
            rows.append(row)
            cells[(row, "TTPs")] = float(plan.tree_pattern_count())
            for strategy in ("nljoin", "twigjoin", "scjoin"):
                cells[(row, strategy)] = time_call(
                    lambda e=engine, p=plan, s=strategy:
                    e.execute(p, strategy=s), repeats=repeats)
    return render_table(
        f"Positional tree patterns on QE2/QE5 ({node_count} nodes)",
        rows, ["TTPs", "nljoin", "twigjoin", "scjoin"], cells)


def generate_multi_output_table(person_count=None, repeats=3) -> str:
    """Q5-style FLWOR compositions with the multi-variable merge on/off."""
    person_count = person_count or scaled(300, 50)
    document = xmark_document(person_count, seed=19992001)
    engines = {
        "off": Engine(document),
        "on": Engine(document, optimizer_options=OptimizerOptions(
            enable_multi_output=True)),
    }
    queries = {
        "Q5": "for $x in $input//person[emailaddress] return $x/name",
        "Q5b": "for $a in $input//open_auction return $a/bidder/increase",
    }
    cells = {}
    rows = []
    for query_name, query in sorted(queries.items()):
        for mode, engine in engines.items():
            plan = engine.compile(query)
            row = f"{query_name} multi={mode}"
            rows.append(row)
            cells[(row, "TTPs")] = float(plan.tree_pattern_count())
            for strategy in ("nljoin", "twigjoin"):
                cells[(row, strategy)] = time_call(
                    lambda e=engine, p=plan, s=strategy:
                    e.execute(p, strategy=s), repeats=repeats)
    return render_table(
        f"Multi-variable tree patterns ({person_count} persons)",
        rows, ["TTPs", "nljoin", "twigjoin"], cells)


def generate_chooser_table(repeats=3) -> str:
    flat = Engine(member_document(scaled(15_000), depth=4, tag_count=100))
    deep = Engine(deep_member_document(scaled(20_000), depth=15))
    xmark = Engine(xmark_document(scaled(300, 50), seed=19992001))
    workloads = [
        ("rooted path", flat, "$input/desc::t01/child::t02"),
        ("branching twig", flat,
         "$input/desc::t01[desc::t02[desc::t03]/desc::t04[desc::t03]]"),
        ("selective chain", deep, "/" + "/".join(["t1[1]"] * 10)),
        ("xmark analytics", xmark,
         "$input/site/people/person[emailaddress]/profile/interest"),
    ]
    cells = {}
    rows = [name for name, _, _ in workloads]
    for name, engine, query in workloads:
        plan = engine.compile(query)
        engine.execute(plan, strategy="cost")  # warm document statistics
        for strategy in ALL_STRATEGIES:
            cells[(name, strategy)] = time_call(
                lambda e=engine, p=plan, s=strategy:
                e.execute(p, strategy=s), repeats=repeats)
    return render_table("Cost-based choice vs fixed algorithms (seconds)",
                        rows, ALL_STRATEGIES, cells)


if __name__ == "__main__":
    print(generate_positional_table())
    print()
    print(generate_multi_output_table())
    print()
    print(generate_chooser_table())
