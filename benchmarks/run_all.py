"""Regenerate every paper table and figure in one run.

Usage::

    python benchmarks/run_all.py            # scaled-down defaults
    REPRO_SCALE=10 python benchmarks/run_all.py   # paper-sized workloads

The output is the material recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
import time

import bench_ablation
import bench_columnar
import bench_compiled
import bench_extensions
import bench_figure4
import bench_figure6
import bench_obsplane
import bench_selective
import bench_serve
import bench_table1
import bench_trace
import bench_xmark_catalog


def main() -> int:
    sections = [
        ("Table 1 (Section 5.2)", bench_table1.generate_table),
        ("Figure 4 (Section 5.1)", bench_figure4.generate_figure),
        ("Figure 6 (Section 5.2)", bench_figure6.generate_figure),
        ("Section 5.3 table", bench_selective.generate_table),
        ("Summary prefilter (docs/INDEXING.md)",
         bench_selective.generate_prefilter_table),
        ("Ablation (DESIGN.md E5)", bench_ablation.generate_table),
        ("Adapted XMark catalog (workload family)",
         bench_xmark_catalog.generate_table),
        ("Extensions: positional patterns (Section 7)",
         bench_extensions.generate_positional_table),
        ("Extensions: multi-variable patterns (Section 1)",
         bench_extensions.generate_multi_output_table),
        ("Extensions: cost-based choice (Section 7)",
         bench_extensions.generate_chooser_table),
        ("Serving layer under load (docs/SERVING.md, E8)",
         bench_serve.generate_table),
        ("Tracing overhead (docs/TRACING.md, E9)",
         bench_trace.generate_table),
        ("Columnar store (docs/STORAGE.md, E10)",
         bench_columnar.generate_table),
        ("Resilience under chaos (docs/ROBUSTNESS.md, E11)",
         bench_serve.generate_chaos_table),
        ("Compiled backend (docs/PIPELINE.md, E12)",
         bench_compiled.generate_table),
        ("Multi-process sharded cluster (docs/CLUSTER.md, E13)",
         bench_serve.generate_cluster_table),
        ("Distributed telemetry plane (docs/OBSPLANE.md, E14)",
         bench_obsplane.generate_table),
    ]
    for title, generate in sections:
        start = time.perf_counter()
        print("#" * 72)
        print(f"# {title}")
        print("#" * 72)
        print(generate())
        print(f"[generated in {time.perf_counter() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
