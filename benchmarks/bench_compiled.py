"""E12: the compiled (produce/consume) backend vs the interpreter.

Two workloads, both straight from earlier experiment sections:

* the **E2** MemBeR document (Table 1 shape) running QE1–QE6;
* the **E7** summary document (the prefilter experiment's 6-tag MemBeR
  shape) running evaluator-bound queries that *match* (positional
  steps and plain chains through the tuple machinery).

The compiled backend fuses the tuple pipeline (``MapFromItem`` →
``Select`` → …) into generated Python, so it wins exactly where that
machinery dominates: positional chains (QE2/QE5, ``//t01/t02[1]``) and
prefilter-era hot paths.  Pattern-join-bound queries (QE3/QE4/QE6 at
this document shape) sit at parity because pattern evaluation is a
pipeline breaker executed by the same physical algorithm in both
backends — the table shows those too, honestly.

``generate_table`` asserts a ≥ :data:`SPEEDUP_FLOOR` geometric-mean
speedup over the declared :data:`HOT_PATHS` — the regression gate CI's
``compiled-smoke`` job runs at ``REPRO_SCALE=0.25``.

Run styles:

* ``pytest benchmarks/bench_compiled.py --benchmark-only``;
* ``python benchmarks/bench_compiled.py`` — prints the E12 tables.
"""

from __future__ import annotations

import pytest

from repro import Engine
from repro.bench import (QE_QUERIES, geometric_mean, render_table, scaled,
                         time_call)
from repro.data import member_document

#: asserted floor on the hot-path geometric-mean speedup.
SPEEDUP_FLOOR = 1.3

#: evaluator-bound queries on the E7 (summary experiment) document.
E7_QUERIES = {
    "chain": "$input//t01/t02",
    "positional": "$input//t01/t02[1]",
}

#: the queries whose geometric-mean speedup is asserted: the
#: evaluator-bound hot paths of E2 (positional chains QE2/QE5 plus the
#: child-chain QE1) and of the E7 document.  Keys name (table, row).
HOT_PATHS = (("E2", "QE1"), ("E2", "QE2"), ("E2", "QE5"),
             ("E7", "chain"), ("E7", "positional"))

BACKENDS = ("interpreted", "compiled")


def e2_engine(node_count=None) -> Engine:
    node_count = node_count or scaled(4_000)
    return Engine(member_document(node_count, depth=4, tag_count=100,
                                  seed=20070415))


def e7_engine(node_count=None) -> Engine:
    node_count = node_count or scaled(20_000)
    return Engine(member_document(node_count, depth=8, tag_count=6,
                                  seed=5))


@pytest.fixture(scope="module")
def engines():
    return {"E2": e2_engine(), "E7": e7_engine()}


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("query_name", sorted(QE_QUERIES))
def test_qe_backends(benchmark, engines, query_name, backend):
    engine = engines["E2"]
    plan = engine.compile(QE_QUERIES[query_name])
    benchmark.extra_info["query"] = query_name
    benchmark(lambda: engine.execute(plan, backend=backend))


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("query_name", sorted(E7_QUERIES))
def test_e7_backends(benchmark, engines, query_name, backend):
    engine = engines["E7"]
    plan = engine.compile(E7_QUERIES[query_name])
    benchmark.extra_info["query"] = E7_QUERIES[query_name]
    benchmark(lambda: engine.execute(plan, backend=backend))


def _measure(engine, queries, repeats):
    """rows × {interpreted, compiled, speedup} cells; returns (cells,
    speedups-by-row).  Byte-identity is asserted on every pair — a
    benchmark must never time a wrong answer."""
    cells, speedups = {}, {}
    for label, query in queries.items():
        plan = engine.compile(query)
        reference = engine.execute(plan, backend="interpreted")
        assert engine.execute(plan, backend="compiled") == reference, (
            f"compiled diverged on {query!r}")
        timings = {}
        for backend in BACKENDS:
            timings[backend] = time_call(
                lambda b=backend: engine.execute(plan, backend=b),
                repeats=repeats)
            cells[(label, backend)] = timings[backend]
        speedup = (timings["interpreted"] / timings["compiled"]
                   if timings["compiled"] > 0 else float("inf"))
        cells[(label, "speedup")] = speedup
        speedups[label] = speedup
    return cells, speedups


def generate_table(e2_nodes=None, e7_nodes=None, repeats=5) -> str:
    engines = {"E2": e2_engine(e2_nodes), "E7": e7_engine(e7_nodes)}
    workloads = {"E2": QE_QUERIES, "E7": E7_QUERIES}
    titles = {
        "E2": "E12a. QE1-QE6 (E2 document): interpreted vs compiled "
              "backend",
        "E7": "E12b. Evaluator-bound queries (E7 document): interpreted "
              "vs compiled backend",
    }
    columns = ["interpreted", "compiled", "speedup"]
    sections = []
    hot = {}
    for table, queries in workloads.items():
        cells, speedups = _measure(engines[table], queries, repeats)
        sections.append(render_table(titles[table], list(queries),
                                     columns, cells))
        for label, speedup in speedups.items():
            if (table, label) in HOT_PATHS:
                hot[(table, label)] = speedup
    assert set(hot) == set(HOT_PATHS)
    mean = geometric_mean(list(hot.values()))
    gate = (f"hot-path geometric-mean speedup: {mean:.2f}x over "
            f"{', '.join(f'{t}:{q}' for t, q in HOT_PATHS)} "
            f"(floor {SPEEDUP_FLOOR}x)")
    assert mean >= SPEEDUP_FLOOR, (
        f"compiled backend regressed: hot-path geomean {mean:.2f}x "
        f"< {SPEEDUP_FLOOR}x floor")
    return "\n\n".join(sections) + "\n\n" + gate


if __name__ == "__main__":
    print(generate_table())
