"""Ablation: which rewrite families matter for tree-pattern detection.

Not a paper table, but an experiment DESIGN.md calls out: toggle each
Section 3 rule family (and the Section 4 merge rules) off in turn and
measure (a) how many ``TupleTreePattern`` operators remain and (b) query
evaluation time on the Section 5.1 workload.  Document-order removal and
loop splitting are the load-bearing passes: without them the plans stay
nested maps and never reach the single-pattern form.

Run styles:

* ``pytest benchmarks/bench_ablation.py --benchmark-only``;
* ``python benchmarks/bench_ablation.py`` — prints the ablation grid.
"""

from __future__ import annotations

import pytest

from repro import Engine
from repro.algebra.optimizer import OptimizerOptions
from repro.bench import BASE_QUERY, generate_variants, render_table, scaled, time_call
from repro.data import xmark_document
from repro.rewrite import RewriteOptions

CONFIGURATIONS = {
    "full": (RewriteOptions(), OptimizerOptions()),
    "no-typeswitch": (RewriteOptions(typeswitch=False), OptimizerOptions()),
    "no-flwor": (RewriteOptions(flwor=False), OptimizerOptions()),
    "no-docorder": (RewriteOptions(docorder=False), OptimizerOptions()),
    "no-loopsplit": (RewriteOptions(loop_split=False), OptimizerOptions()),
    "no-merge": (RewriteOptions(),
                 OptimizerOptions(enable_merge=False)),
    "no-ddo-removal": (RewriteOptions(),
                       OptimizerOptions(enable_ddo_removal=False)),
    "nothing": (RewriteOptions.none(),
                OptimizerOptions(enable_tree_patterns=False)),
}


def engine_for(configuration, document) -> Engine:
    rewrite_options, optimizer_options = CONFIGURATIONS[configuration]
    return Engine(document, rewrite_options=rewrite_options,
                  optimizer_options=optimizer_options)


@pytest.mark.parametrize("configuration", sorted(CONFIGURATIONS))
def test_ablation(benchmark, xmark_documents, configuration):
    document = xmark_documents[max(xmark_documents)]
    engine = engine_for(configuration, document)
    plan = engine.compile(BASE_QUERY)
    benchmark.extra_info["tree_patterns"] = plan.tree_pattern_count()
    benchmark(lambda: engine.execute(plan))


def generate_table(person_count=None, repeats=3) -> str:
    person_count = person_count or scaled(200, 40)
    document = xmark_document(person_count, seed=19992001)
    variants = generate_variants()
    cells = {}
    rows = sorted(CONFIGURATIONS)
    for configuration in rows:
        engine = engine_for(configuration, document)
        plan = engine.compile(BASE_QUERY)
        cells[(configuration, "TTPs")] = float(plan.tree_pattern_count())
        distinct = len({engine.compile(v).canonical_plan()
                        for v in variants})
        cells[(configuration, "plans/20")] = float(distinct)
        cells[(configuration, "seconds")] = time_call(
            lambda e=engine, p=plan: e.execute(p), repeats=repeats)
    columns = ["TTPs", "plans/20", "seconds"]
    return render_table(
        "Ablation: rewrite families vs detection quality "
        f"({person_count} persons)",
        rows, columns, cells)


if __name__ == "__main__":
    print(generate_table())
