"""Section 5.3: XPath evaluation in an XQuery context — ``(/t1[1])^k``.

The paper's experiment: a MemBeR document of 50,000 nodes and depth 15,
all elements named ``t1``; the queries ``(/t1[1])^k`` for k ∈ {5,10,15}.
The positional predicates put the query outside the tree-pattern
fragment, so the plan contains single-step ``TupleTreePattern``
operators embedded in maps: TwigJoin and SCJoin re-scan the (single,
document-sized) tag stream at every step while NLJoin only touches each
context's children.

Expected shape (the paper's table): NLJoin faster than both by orders of
magnitude; SCJoin a constant factor faster than TwigJoin; times roughly
flat in k for the stream-based algorithms.

Run styles:

* ``pytest benchmarks/bench_selective.py --benchmark-only``;
* ``python benchmarks/bench_selective.py`` — prints the paper's 3×3
  table.
"""

from __future__ import annotations

import pytest

from repro import Engine
from repro.bench import (STRATEGIES, STRATEGY_LABELS, measure_strategy,
                         render_measurements, render_table, scaled,
                         time_call)
from repro.data import deep_member_document, member_document

K_VALUES = [5, 10, 15]

# Queries the structural path summary proves empty: the prefilter answers
# them without touching a single stream or navigation step, while the
# summary-less engine pays the full evaluation cost.
PREFILTER_QUERIES = [
    ("absent tag", "$input//t01//t07"),
    ("wrong root child", "$input/t02/t01"),
    ("over-deep chain", "/" + "/".join(["t01"] * 12)),
    ("impossible branch", "$input//t03[t07]/t01"),
]


def chain_query(k: int) -> str:
    return "/" + "/".join(["t1[1]"] * k)


@pytest.fixture(scope="module")
def deep_engine(deep_document):
    return Engine(deep_document)


@pytest.fixture(scope="module")
def compiled(deep_engine):
    return {k: deep_engine.compile(chain_query(k)) for k in K_VALUES}


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("k", K_VALUES)
def test_selective_chain(benchmark, deep_engine, compiled, k, strategy):
    plan = compiled[k]
    benchmark.extra_info["query"] = f"(/t1[1])^{k}"
    benchmark(lambda: deep_engine.execute(plan, strategy=strategy))


def generate_table(node_count=None, repeats=3) -> str:
    node_count = node_count or scaled(20_000)
    engine = Engine(deep_member_document(node_count, depth=15))
    cells = {}
    # ST = the Stack-Tree binary-join baseline, whose full-stream sweeps
    # match the cost profile the paper reports for its SCJoin here.
    labels = dict(STRATEGY_LABELS, stacktree="ST")
    strategies = list(STRATEGIES) + ["stacktree"]
    rows = [labels[s] for s in strategies]
    for strategy in strategies:
        for k in K_VALUES:
            plan = engine.compile(chain_query(k))
            seconds = time_call(
                lambda p=plan, s=strategy: engine.execute(p, strategy=s),
                repeats=repeats)
            cells[(labels[strategy], f"k = {k}")] = seconds
    columns = [f"k = {k}" for k in K_VALUES]
    timings = render_table(
        f"Section 5.3. (/t1[1])^k on a deep single-tag document "
        f"({node_count} nodes, depth 15)",
        rows, columns, cells)
    # The *why* behind the timings (repro.obs counters): NLJoin's
    # visited count tracks the tiny touched region while the
    # stream-based algorithms re-scan the document-sized stream per
    # step — exactly the paper's Section 5.3 explanation.
    work = {f"k = {k}": [measure_strategy(engine,
                                          engine.compile(chain_query(k)),
                                          strategy, repeats=1)
                         for strategy in strategies]
            for k in K_VALUES}
    counters = render_measurements(
        "Work counters (v = nodes visited, s = stream elements scanned)",
        work)
    return timings + "\n\n" + counters


def generate_prefilter_table(node_count=None, repeats=5) -> str:
    """Selective queries with and without the structural summary.

    Every query in :data:`PREFILTER_QUERIES` has an empty result that
    the path summary can prove; the ``summary on`` column should beat
    ``summary off`` (the ``--no-summary`` escape hatch) by a wide
    margin because the prefilter short-circuits evaluation entirely.
    """
    node_count = node_count or scaled(20_000)
    document = member_document(node_count, depth=8, tag_count=6, seed=5)
    with_summary = Engine(document)
    without = Engine(document, use_summary=False)
    cells = {}
    rows = [label for label, _ in PREFILTER_QUERIES]
    columns = ["summary on", "summary off", "speedup"]
    for label, query in PREFILTER_QUERIES:
        timings = {}
        for column, engine in (("summary on", with_summary),
                               ("summary off", without)):
            plan = engine.compile(query)
            assert not engine.execute(plan, strategy="scjoin"), \
                f"prefilter benchmark query matched: {query}"
            timings[column] = time_call(
                lambda p=plan, e=engine: e.execute(p, strategy="scjoin"),
                repeats=repeats)
            cells[(label, column)] = timings[column]
        cells[(label, "speedup")] = (
            timings["summary off"] / timings["summary on"]
            if timings["summary on"] > 0 else float("inf"))
    return render_table(
        f"Summary prefilter: provably-empty queries on a MemBeR document "
        f"({node_count} nodes, depth 8, 6 tags); speedup = off / on",
        rows, columns, cells)


if __name__ == "__main__":
    print(generate_table())
    print()
    print(generate_prefilter_table())
