"""Section 5.3: XPath evaluation in an XQuery context — ``(/t1[1])^k``.

The paper's experiment: a MemBeR document of 50,000 nodes and depth 15,
all elements named ``t1``; the queries ``(/t1[1])^k`` for k ∈ {5,10,15}.
The positional predicates put the query outside the tree-pattern
fragment, so the plan contains single-step ``TupleTreePattern``
operators embedded in maps: TwigJoin and SCJoin re-scan the (single,
document-sized) tag stream at every step while NLJoin only touches each
context's children.

Expected shape (the paper's table): NLJoin faster than both by orders of
magnitude; SCJoin a constant factor faster than TwigJoin; times roughly
flat in k for the stream-based algorithms.

Run styles:

* ``pytest benchmarks/bench_selective.py --benchmark-only``;
* ``python benchmarks/bench_selective.py`` — prints the paper's 3×3
  table.
"""

from __future__ import annotations

import pytest

from repro import Engine
from repro.bench import (STRATEGIES, STRATEGY_LABELS, measure_strategy,
                         render_measurements, render_table, scaled,
                         time_call)
from repro.data import deep_member_document

K_VALUES = [5, 10, 15]


def chain_query(k: int) -> str:
    return "/" + "/".join(["t1[1]"] * k)


@pytest.fixture(scope="module")
def deep_engine(deep_document):
    return Engine(deep_document)


@pytest.fixture(scope="module")
def compiled(deep_engine):
    return {k: deep_engine.compile(chain_query(k)) for k in K_VALUES}


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("k", K_VALUES)
def test_selective_chain(benchmark, deep_engine, compiled, k, strategy):
    plan = compiled[k]
    benchmark.extra_info["query"] = f"(/t1[1])^{k}"
    benchmark(lambda: deep_engine.execute(plan, strategy=strategy))


def generate_table(node_count=None, repeats=3) -> str:
    node_count = node_count or scaled(20_000)
    engine = Engine(deep_member_document(node_count, depth=15))
    cells = {}
    # ST = the Stack-Tree binary-join baseline, whose full-stream sweeps
    # match the cost profile the paper reports for its SCJoin here.
    labels = dict(STRATEGY_LABELS, stacktree="ST")
    strategies = list(STRATEGIES) + ["stacktree"]
    rows = [labels[s] for s in strategies]
    for strategy in strategies:
        for k in K_VALUES:
            plan = engine.compile(chain_query(k))
            seconds = time_call(
                lambda p=plan, s=strategy: engine.execute(p, strategy=s),
                repeats=repeats)
            cells[(labels[strategy], f"k = {k}")] = seconds
    columns = [f"k = {k}" for k in K_VALUES]
    timings = render_table(
        f"Section 5.3. (/t1[1])^k on a deep single-tag document "
        f"({node_count} nodes, depth 15)",
        rows, columns, cells)
    # The *why* behind the timings (repro.obs counters): NLJoin's
    # visited count tracks the tiny touched region while the
    # stream-based algorithms re-scan the document-sized stream per
    # step — exactly the paper's Section 5.3 explanation.
    work = {f"k = {k}": [measure_strategy(engine,
                                          engine.compile(chain_query(k)),
                                          strategy, repeats=1)
                         for strategy in strategies]
            for k in K_VALUES}
    counters = render_measurements(
        "Work counters (v = nodes visited, s = stream elements scanned)",
        work)
    return timings + "\n\n" + counters


if __name__ == "__main__":
    print(generate_table())
