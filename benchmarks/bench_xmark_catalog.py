"""The adapted XMark query catalog under every paper algorithm.

A broader workload than Figure 6's path pairs: the access patterns of
the XMark benchmark queries (projection-adapted; see
``repro.bench.xmark_queries``), covering rooted paths, branching
patterns, positional access, aggregation and value joins.

Run styles:

* ``pytest benchmarks/bench_xmark_catalog.py --benchmark-only``;
* ``python benchmarks/bench_xmark_catalog.py`` — prints the full grid.
"""

from __future__ import annotations

import pytest

from repro import Engine
from repro.bench import (STRATEGIES, STRATEGY_LABELS, XMARK_CATALOG,
                         render_table, scaled, time_call)
from repro.data import xmark_document

#: value-join entries are quadratic under every strategy; benchmark the
#: structural ones per-strategy and time joins once.
STRUCTURAL = [name for name, entry in sorted(XMARK_CATALOG.items())
              if not entry.join]


@pytest.fixture(scope="module")
def catalog_engine(xmark_documents):
    return Engine(xmark_documents[max(xmark_documents)])


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("name", STRUCTURAL)
def test_xmark_catalog(benchmark, catalog_engine, name, strategy):
    plan = catalog_engine.compile(XMARK_CATALOG[name].query)
    benchmark.extra_info["original"] = XMARK_CATALOG[name].original
    benchmark(lambda: catalog_engine.execute(plan, strategy=strategy))


def generate_table(person_count=None, repeats=3) -> str:
    person_count = person_count or scaled(300, 50)
    engine = Engine(xmark_document(person_count, seed=19992001))
    cells = {}
    rows = []
    for name, entry in sorted(XMARK_CATALOG.items()):
        rows.append(name)
        plan = engine.compile(entry.query)
        strategies = STRATEGIES if not entry.join else ["scjoin"]
        for strategy in strategies:
            cells[(name, STRATEGY_LABELS.get(strategy, strategy))] = \
                time_call(lambda p=plan, s=strategy:
                          engine.execute(p, strategy=s), repeats=repeats)
    columns = [STRATEGY_LABELS[s] for s in STRATEGIES]
    return render_table(
        f"Adapted XMark catalog ({person_count} persons; joins: SC only)",
        rows, columns, cells)


if __name__ == "__main__":
    print(generate_table())
