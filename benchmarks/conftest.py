"""Shared benchmark fixtures.

Documents are built once per session; sizes honour ``REPRO_SCALE`` (see
``repro.bench.harness``).  Queries are compiled once and only execution
is timed, mirroring the paper's evaluation-time measurements.
"""

from __future__ import annotations

import pytest

from repro import Engine
from repro.bench import scaled, table1_node_counts
from repro.data import deep_member_document, member_document, xmark_document


@pytest.fixture(scope="session")
def table1_documents():
    """The five MemBeR documents of Table 1 (scaled)."""
    return {count: member_document(count, depth=4, tag_count=100,
                                   seed=20070415)
            for count in table1_node_counts()}


@pytest.fixture(scope="session")
def deep_document():
    """The Section 5.3 document: deep, single-tag."""
    return deep_member_document(scaled(20_000), depth=15)


@pytest.fixture(scope="session")
def xmark_documents():
    """Five XMark documents of increasing size (Figures 4 and 6)."""
    return {count: xmark_document(count, seed=19992001)
            for count in (scaled(60, 10), scaled(120, 20), scaled(180, 30),
                          scaled(240, 40), scaled(300, 50))}


@pytest.fixture(scope="session")
def xmark_engine(xmark_documents):
    largest = max(xmark_documents)
    return Engine(xmark_documents[largest])
