"""Figure 6: XMark queries where child has been replaced with descendant.

The paper's Figure 6 compares evaluation times of several XMark queries
in their child-axis form against the semantically equivalent
descendant-axis form, under the three algorithms.  The finding:
"evaluating child axes does not penalize query performance in both
TwigJoin and SCJoin", and turning child into descendant is sometimes
beneficial.

Run styles:

* ``pytest benchmarks/bench_figure6.py --benchmark-only``;
* ``python benchmarks/bench_figure6.py`` — prints the full grid.
"""

from __future__ import annotations

import pytest

from repro import Engine
from repro.bench import STRATEGIES, STRATEGY_LABELS, render_table, scaled, time_call
from repro.data import XMARK_CHILD_DESCENDANT_PAIRS, xmark_document


@pytest.fixture(scope="module")
def compiled(xmark_engine):
    plans = {}
    for name, child_form, descendant_form in XMARK_CHILD_DESCENDANT_PAIRS:
        plans[f"{name}-child"] = xmark_engine.compile(child_form)
        plans[f"{name}-desc"] = xmark_engine.compile(descendant_form)
    return plans


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("axis_form", ["child", "desc"])
@pytest.mark.parametrize(
    "query_name", [pair[0] for pair in XMARK_CHILD_DESCENDANT_PAIRS])
def test_figure6(benchmark, xmark_engine, compiled, query_name, axis_form,
                 strategy):
    plan = compiled[f"{query_name}-{axis_form}"]
    benchmark.extra_info["query"] = plan.text
    benchmark(lambda: xmark_engine.execute(plan, strategy=strategy))


def generate_figure(person_count=None, repeats=3) -> str:
    person_count = person_count or scaled(300, 50)
    engine = Engine(xmark_document(person_count, seed=19992001))
    cells = {}
    rows = []
    for name, child_form, descendant_form in XMARK_CHILD_DESCENDANT_PAIRS:
        for axis_form, query in (("child", child_form),
                                 ("desc", descendant_form)):
            row = f"{name}-{axis_form}"
            rows.append(row)
            plan = engine.compile(query)
            for strategy in STRATEGIES:
                seconds = time_call(
                    lambda p=plan, s=strategy: engine.execute(p, strategy=s),
                    repeats=repeats)
                cells[(row, STRATEGY_LABELS[strategy])] = seconds
    columns = [STRATEGY_LABELS[s] for s in STRATEGIES]
    return render_table(
        f"Figure 6. XMark queries, child vs descendant forms "
        f"({person_count} persons)",
        rows, columns, cells, highlight_best_per_group=2)


if __name__ == "__main__":
    print(generate_figure())
