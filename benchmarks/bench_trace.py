"""E9 — tracing overhead on QE1–QE6 (docs/TRACING.md).

Times each Figure 5 query three ways on one MemBeR document:

* **untraced** — ``engine.execute`` with no tracing argument, the
  baseline every other experiment measures;
* **disabled** — a ``Tracer(enabled=False)`` consulted per run; its
  ``begin`` returns ``None``, so the engine takes the same fast paths
  as the baseline.  This mode must cost nothing measurable: it is what
  a service pays for *having* tracing wired in but switched off;
* **traced** — a live tracer with full span capture (per-stage,
  per-operator and per-pattern spans, operator cardinalities).

The aggregate overheads are asserted.  Tracing cost decomposes into a
small **constant** per request (create the trace, absorb the
aggregates) plus a **constant per span** (two clock reads and one
small object — ~4 µs in pure Python).  Span count tracks operator
*evaluations*, so coarse plans cost ~8 spans per run while the
positional queries (QE2/QE5), whose sub-plans are re-evaluated per
tuple, emit hundreds.  A flat "under 5%" assertion is therefore only
meaningful when operators do real work; for micro-operators the 5%
budget would demand ~50 ns spans, which no pure-Python tracer can hit.
The budget is ``max(tolerance × baseline, run_floor × runs +
span_allowance × spans)``: the ratio governs once queries do real
work, the per-span allowance is the actual regression guard — it
catches anyone making the span hot path slower (say, formatting a
pattern string per operator).  Totals are compared rather than
per-query cells because single-query best-of-N times on a pure-Python
interpreter still jitter by a few percent.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro import Engine
from repro.bench import QE_QUERIES, scaled, time_call
from repro.data import member_document
from repro.trace import Tracer

#: document size (nodes) at scale 1.0 — the middle Table 1 size.
BASE_NODES = 12_000

#: strategy under test; ``auto`` exercises the chooser's decision events.
STRATEGY = "twigjoin"

REPEATS = 5

#: disabled tracing must sit within timing noise of the baseline.
#: Best-of-N on CPython still jitters by a few percent, so "noise" is
#: taken as 10% of the aggregate — far below any real per-query cost.
DISABLED_TOLERANCE = 0.10

#: absolute noise floor for the disabled mode: one extra method call
#: (``Tracer.begin`` returning ``None``) per run, generously bounded.
DISABLED_FLOOR_SECONDS = 50e-6

#: full span capture may cost this fraction of untraced time in
#: aggregate: per-operator spans are two clock reads and one small
#: object per operator evaluation.
TRACED_TOLERANCE = 0.05

#: constant per-request tracing cost allowance (trace creation, root
#: span, finish + absorb); CI machines run ~2–3× slower than the
#: numbers in the docstring.
TRACED_FLOOR_SECONDS = 150e-6

#: allowance per span created — begin_span/end_span/record_op measure
#: ~4 µs on a fast interpreter.
SPAN_ALLOWANCE_SECONDS = 12e-6


def _run_modes(engine: Engine, compiled,
               repeats: int = REPEATS) -> Dict[str, float]:
    off = Tracer(enabled=False)
    on = Tracer()

    def untraced() -> None:
        engine.execute(compiled, strategy=STRATEGY)

    def disabled() -> None:
        engine.execute(compiled, strategy=STRATEGY,
                       tracing=off.begin("query"))

    def traced() -> None:
        trace = on.begin("query")
        try:
            engine.execute(compiled, strategy=STRATEGY, tracing=trace)
        finally:
            trace.finish()

    modes: Dict[str, Callable[[], None]] = {
        "untraced": untraced, "disabled": disabled, "traced": traced}
    row = {name: time_call(func, repeats=repeats)
           for name, func in modes.items()}
    # One extra instrumented pass to count the spans a run emits (the
    # per-span allowance in check_overheads needs it).
    probe = Tracer().begin("query")
    engine.execute(compiled, strategy=STRATEGY, tracing=probe)
    probe.finish()
    row["spans"] = float(len(probe.spans) + probe.dropped_spans)
    return row


def measure(node_count: Optional[int] = None,
            repeats: int = REPEATS) -> Dict[str, Dict[str, float]]:
    """Per-query best-of-N seconds for each mode."""
    node_count = node_count or scaled(BASE_NODES)
    engine = Engine(member_document(node_count, depth=4, tag_count=100,
                                    seed=20070415))
    results: Dict[str, Dict[str, float]] = {}
    for name in sorted(QE_QUERIES):
        compiled = engine.compile(QE_QUERIES[name])
        results[name] = _run_modes(engine, compiled, repeats=repeats)
    return results


def check_overheads(results: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """Assert the aggregate overhead budget; return the ratios.

    Budget per mode: ``max(tolerance × untraced_total, floor × runs)``
    — see the module docstring for why the absolute floor exists.
    """
    runs = len(results)
    totals = {mode: sum(row[mode] for row in results.values())
              for mode in ("untraced", "disabled", "traced", "spans")}
    disabled_extra = totals["disabled"] - totals["untraced"]
    traced_extra = totals["traced"] - totals["untraced"]
    disabled_budget = max(DISABLED_TOLERANCE * totals["untraced"],
                          DISABLED_FLOOR_SECONDS * runs)
    traced_budget = max(
        TRACED_TOLERANCE * totals["untraced"],
        TRACED_FLOOR_SECONDS * runs
        + SPAN_ALLOWANCE_SECONDS * totals["spans"])
    assert disabled_extra <= disabled_budget, (
        f"disabled tracing costs {disabled_extra * 1e6:.0f} us over "
        f"baseline (budget {disabled_budget * 1e6:.0f} us) — the None "
        f"fast paths are no longer free")
    assert traced_extra <= traced_budget, (
        f"full tracing costs {traced_extra * 1e6:.0f} us over baseline "
        f"(budget {traced_budget * 1e6:.0f} us)")
    return {"disabled": disabled_extra / totals["untraced"],
            "traced": traced_extra / totals["untraced"]}


def render(results: Dict[str, Dict[str, float]],
           ratios: Dict[str, float]) -> str:
    lines = [f"Tracing overhead on QE1–QE6 ({STRATEGY}, best of "
             f"{REPEATS}, seconds)",
             f"{'query':>8}{'untraced':>12}{'disabled':>12}{'traced':>12}"
             f"{'spans':>8}{'us/span':>9}"]
    for name, row in sorted(results.items()):
        extra = row["traced"] - row["untraced"]
        per_span = extra / row["spans"] * 1e6 if row["spans"] else 0.0
        lines.append(f"{name:>8}{row['untraced']:>12.6f}"
                     f"{row['disabled']:>12.6f}{row['traced']:>12.6f}"
                     f"{row['spans']:>8.0f}{per_span:>9.2f}")
    lines.append(f"aggregate: disabled {ratios['disabled']:+.1%}, "
                 f"traced {ratios['traced']:+.1%} of baseline "
                 f"(ratio budgets {DISABLED_TOLERANCE:.0%} / "
                 f"{TRACED_TOLERANCE:.0%}, span allowance "
                 f"{SPAN_ALLOWANCE_SECONDS * 1e6:.0f} us)")
    return "\n".join(lines)


def generate_table() -> str:
    results = measure()
    ratios = check_overheads(results)
    return render(results, ratios)


if __name__ == "__main__":
    print(generate_table())
