"""E10 — columnar store: build, mmap open, join throughput, memory.

Four measurements of ``repro.xmltree.columnar`` against the object
store (docs/STORAGE.md):

* **build & persist** — parse+index time vs column build time, save
  time and on-disk size for the Table 1 MemBeR series;
* **catalog open** — re-parsing the XML and rebuilding every index
  (what ``DocumentCatalog`` paid before this format existed) vs
  ``IndexedDocument.open``'s lazy mmap.  The acceptance bar — mmap
  open at least 2× faster — is asserted, and a *first-query* column
  shows the laziness is not just deferring the whole cost;
* **join throughput** — QE1–QE6 on a MemBeR document (the E2
  workload) and the structural XMark catalog entries (the E7
  document) under SC and TJ, object store vs a saved-then-mmap-opened
  columnar document.  Both run the same integer-column inner loops,
  so the columnar column should sit within noise of the object store
  while skipping the parse entirely;
* **resident memory** — peak Python heap to materialize each store
  (``tracemalloc``) plus the columnar byte footprint, which for a
  mapped document lives in the page cache, not the heap.

Run styles::

    pytest benchmarks/bench_columnar.py --benchmark-only
    python benchmarks/bench_columnar.py
"""

from __future__ import annotations

import os
import tempfile
import tracemalloc
from typing import Dict, List

import pytest

from repro import Engine
from repro.bench import QE_QUERIES, XMARK_CATALOG, scaled, time_call
from repro.data import member_document, xmark_document
from repro.xmltree import (ColumnarDocument, IndexedDocument, parse_xml,
                           serialize)

#: MemBeR sizes for the build/persist series — the Table 1 shape,
#: thinned to three points (build cost is linear; five adds nothing).
BUILD_NODE_COUNTS = [4_000, 12_000, 20_000]

#: the open-time and join measurements run on the middle Table 1 size.
OPEN_NODES = 12_000

#: required mmap-open advantage over re-parse+index (acceptance bar).
OPEN_SPEEDUP_FLOOR = 2.0

REPEATS = 3

JOIN_STRATEGIES = ["scjoin", "twigjoin"]

#: structural XMark catalog entries (value joins are quadratic under
#: every strategy and would swamp the store comparison).
XMARK_STRUCTURAL = [name for name, entry in sorted(XMARK_CATALOG.items())
                    if not entry.join][:6]


def _member_xml(node_count: int) -> str:
    doc = member_document(node_count, depth=4, tag_count=100,
                          seed=20070415)
    return serialize(doc.root)


def _object_open(xml_text: str) -> IndexedDocument:
    """The pre-columnar catalog path: parse + index, eagerly."""
    doc = IndexedDocument(parse_xml(xml_text))
    doc.nodes_by_pre      # force the index build the engine needs
    return doc


def measure_build(node_counts: List[int] | None = None,
                  repeats: int = REPEATS) -> List[Dict[str, float]]:
    """Parse/build/save/open seconds and file size per document size."""
    rows = []
    with tempfile.TemporaryDirectory(prefix="repro-e10-") as tmp:
        for base in (node_counts or BUILD_NODE_COUNTS):
            count = scaled(base)
            xml_text = _member_xml(count)
            parse_seconds = time_call(lambda: _object_open(xml_text),
                                      repeats)
            doc = _object_open(xml_text)
            build_seconds = time_call(
                lambda: ColumnarDocument.from_nodes(doc.nodes_by_pre),
                repeats)
            path = os.path.join(tmp, f"member-{count}.rpxc")
            save_seconds = time_call(lambda: doc.columns.save(path),
                                     repeats)
            open_seconds = _mmap_open_seconds(path, repeats)
            rows.append({
                "nodes": float(doc.size),
                "parse+index": parse_seconds,
                "columns": build_seconds,
                "save": save_seconds,
                "bytes": float(os.path.getsize(path)),
                "mmap open": open_seconds,
            })
    return rows


def _mmap_open_seconds(path: str, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        opened = IndexedDocument.open(path, verify=False)
        best = min(best, opened.columns.open_seconds)
        opened.close()
    return best


def measure_open(node_count: int | None = None,
                 repeats: int = REPEATS) -> Dict[str, float]:
    """Catalog-open comparison on one document: seconds to a usable
    engine, seconds to the first query result, and the speedup."""
    count = scaled(node_count or OPEN_NODES)
    xml_text = _member_xml(count)
    with tempfile.TemporaryDirectory(prefix="repro-e10-") as tmp:
        path = os.path.join(tmp, "member.rpxc")
        _object_open(xml_text).save(path)
        query = QE_QUERIES["QE4"]

        object_open = time_call(lambda: _object_open(xml_text), repeats)
        mmap_open = _mmap_open_seconds(path, repeats)

        def object_first_query():
            Engine(_object_open(xml_text)).run(query, strategy="scjoin")

        def mmap_first_query():
            doc = IndexedDocument.open(path, verify=False)
            try:
                Engine(doc).run(query, strategy="scjoin")
            finally:
                doc.close()

        return {
            "nodes": float(count),
            "object open": object_open,
            "mmap open": mmap_open,
            "speedup": object_open / mmap_open,
            "object first query": time_call(object_first_query, repeats),
            "mmap first query": time_call(mmap_first_query, repeats),
        }


def _join_grid(object_engine: Engine, columnar_engine: Engine,
               queries: Dict[str, str],
               repeats: int = REPEATS) -> Dict[tuple, float]:
    cells: Dict[tuple, float] = {}
    for name, query in sorted(queries.items()):
        for label, engine in (("object", object_engine),
                              ("columnar", columnar_engine)):
            plan = engine.compile(query)
            for strategy in JOIN_STRATEGIES:
                cells[(name, f"{strategy}/{label}")] = time_call(
                    lambda e=engine, p=plan, s=strategy:
                    e.execute(p, strategy=s), repeats)
    return cells


def measure_joins(repeats: int = REPEATS):
    """QE1–QE6 (E2) and structural XMark (E7) join times per store."""
    with tempfile.TemporaryDirectory(prefix="repro-e10-") as tmp:
        member = _object_open(_member_xml(scaled(OPEN_NODES)))
        member_path = os.path.join(tmp, "member.rpxc")
        member.save(member_path)
        member_columnar = IndexedDocument.open(member_path, verify=False)

        xmark = IndexedDocument(xmark_document(scaled(300, 50),
                                               seed=19992001).root)
        xmark_path = os.path.join(tmp, "xmark.rpxc")
        xmark.save(xmark_path)
        xmark_columnar = IndexedDocument.open(xmark_path, verify=False)

        qe_cells = _join_grid(Engine(member), Engine(member_columnar),
                              QE_QUERIES, repeats)
        xmark_cells = _join_grid(
            Engine(xmark), Engine(xmark_columnar),
            {name: XMARK_CATALOG[name].query
             for name in XMARK_STRUCTURAL}, repeats)
        member_columnar.close()
        xmark_columnar.close()
    return qe_cells, xmark_cells


def measure_memory(node_count: int | None = None) -> Dict[str, float]:
    """Peak Python-heap bytes to stand up each store."""
    count = scaled(node_count or OPEN_NODES)
    xml_text = _member_xml(count)

    tracemalloc.start()
    doc = _object_open(xml_text)
    _, object_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    columns = doc.columns
    with tempfile.TemporaryDirectory(prefix="repro-e10-") as tmp:
        path = os.path.join(tmp, "member.rpxc")
        columns.save(path)
        tracemalloc.start()
        opened = IndexedDocument.open(path, verify=False)
        opened.tag_pres     # touch the lazy stream directory
        _, mmap_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        opened.close()

    return {
        "nodes": float(count),
        "object heap peak": float(object_peak),
        "column bytes": float(columns.nbytes()),
        "mmap open heap peak": float(mmap_peak),
    }


def _fmt_grid(title: str, cells: Dict[tuple, float]) -> str:
    rows = sorted({row for row, _ in cells})
    columns = [f"{s}/{l}" for s in JOIN_STRATEGIES
               for l in ("object", "columnar")]
    width = max(len(c) for c in columns) + 4
    lines = [title,
             " " * 10 + "".join(c.rjust(width) for c in columns)]
    for row in rows:
        parts = [row.ljust(10)]
        for column in columns:
            parts.append(f"{cells[(row, column)]:.5f}".rjust(width))
        lines.append("".join(parts))
    return "\n".join(lines)


def generate_table() -> str:
    sections = []

    build_rows = measure_build()
    lines = ["Build & persist (MemBeR, seconds; bytes on disk)",
             f"{'nodes':>8}{'parse+index':>14}{'columns':>10}"
             f"{'save':>10}{'bytes':>10}{'mmap open':>12}"]
    for row in build_rows:
        lines.append(f"{row['nodes']:>8.0f}{row['parse+index']:>14.5f}"
                     f"{row['columns']:>10.5f}{row['save']:>10.5f}"
                     f"{row['bytes']:>10.0f}{row['mmap open']:>12.6f}")
    sections.append("\n".join(lines))

    opened = measure_open()
    assert opened["speedup"] >= OPEN_SPEEDUP_FLOOR, (
        f"mmap open is only {opened['speedup']:.1f}× faster than "
        f"re-parse+index (floor {OPEN_SPEEDUP_FLOOR}×)")
    sections.append(
        f"Catalog open ({opened['nodes']:.0f} nodes, best of {REPEATS})\n"
        f"  re-parse + index   {opened['object open']:.5f}s\n"
        f"  mmap open          {opened['mmap open']:.6f}s   "
        f"({opened['speedup']:.0f}x faster)\n"
        f"  first query incl. open: object "
        f"{opened['object first query']:.5f}s, columnar "
        f"{opened['mmap first query']:.5f}s")

    qe_cells, xmark_cells = measure_joins()
    sections.append(_fmt_grid(
        f"Join throughput, QE1–QE6 on MemBeR (E2 workload, seconds)",
        qe_cells))
    sections.append(_fmt_grid(
        "Join throughput, structural XMark catalog (E7 document, seconds)",
        xmark_cells))

    memory = measure_memory()
    sections.append(
        f"Resident memory ({memory['nodes']:.0f} nodes)\n"
        f"  object store heap peak   {memory['object heap peak']:>12,.0f} B\n"
        f"  columnar column bytes    {memory['column bytes']:>12,.0f} B\n"
        f"  mmap open heap peak      "
        f"{memory['mmap open heap peak']:>12,.0f} B")

    return "\n\n".join(sections)


# --- pytest-benchmark entry points -----------------------------------

@pytest.fixture(scope="module")
def stores(tmp_path_factory):
    xml_text = _member_xml(scaled(OPEN_NODES))
    doc = _object_open(xml_text)
    path = tmp_path_factory.mktemp("e10") / "member.rpxc"
    doc.save(path)
    columnar = IndexedDocument.open(path, verify=False)
    yield {"xml": xml_text, "path": path,
           "object": Engine(doc), "columnar": Engine(columnar)}
    columnar.close()


def test_open_object_store(benchmark, stores):
    benchmark(lambda: _object_open(stores["xml"]))


def test_open_mmap(benchmark, stores):
    def open_and_close():
        IndexedDocument.open(stores["path"], verify=False).close()
    benchmark(open_and_close)


@pytest.mark.parametrize("store", ["object", "columnar"])
@pytest.mark.parametrize("strategy", JOIN_STRATEGIES)
@pytest.mark.parametrize("name", sorted(QE_QUERIES))
def test_qe_joins(benchmark, stores, name, strategy, store):
    engine = stores[store]
    plan = engine.compile(QE_QUERIES[name])
    benchmark(lambda: engine.execute(plan, strategy=strategy))


if __name__ == "__main__":
    print(generate_table())
