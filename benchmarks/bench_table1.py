"""Table 1: QE1–QE6 on MemBeR documents × {NL, TJ, SC}.

The paper's Table 1 reports evaluation time for the six Figure 5 queries
on MemBeR documents of depth 4 with 100 uniformly distributed tags, at
five sizes (2.1–11 MB), under the three tree-pattern algorithms.

Run styles:

* ``pytest benchmarks/bench_table1.py --benchmark-only`` — one
  pytest-benchmark entry per (query, strategy) at the middle size;
* ``python benchmarks/bench_table1.py`` — prints the full five-size
  paper-style table (best time per query/size starred, like the paper's
  boldface).

Expected shape (paper Section 5.2): NLJoin is never the fastest; TwigJoin
and SCJoin are within a small constant of each other, with SCJoin
degrading on the complex branching queries.
"""

from __future__ import annotations

import pytest

from repro import Engine
from repro.bench import (QE_QUERIES, STRATEGIES, STRATEGY_LABELS,
                         render_table, table1_node_counts, time_call)
from repro.data import member_document


@pytest.fixture(scope="module")
def engines(table1_documents):
    return {count: Engine(document)
            for count, document in table1_documents.items()}


@pytest.fixture(scope="module")
def compiled(engines):
    engine = next(iter(engines.values()))
    return {name: engine.compile(query)
            for name, query in QE_QUERIES.items()}


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("query_name", sorted(QE_QUERIES))
def test_table1(benchmark, engines, compiled, query_name, strategy):
    sizes = sorted(engines)
    middle = sizes[len(sizes) // 2]
    engine = engines[middle]
    plan = compiled[query_name]
    benchmark.extra_info["query"] = QE_QUERIES[query_name]
    benchmark.extra_info["nodes"] = middle
    benchmark(lambda: engine.execute(plan, strategy=strategy))


def generate_table(node_counts=None, repeats=3) -> str:
    """Regenerate Table 1 and return it as text."""
    node_counts = node_counts or table1_node_counts()
    engines = {count: Engine(member_document(count, depth=4, tag_count=100,
                                             seed=20070415))
               for count in node_counts}
    some_engine = next(iter(engines.values()))
    compiled = {name: some_engine.compile(query)
                for name, query in QE_QUERIES.items()}
    cells = {}
    row_labels = []
    for query_name in sorted(QE_QUERIES):
        for strategy in STRATEGIES:
            row = f"{query_name} {STRATEGY_LABELS[strategy]}"
            row_labels.append(row)
            for count, engine in engines.items():
                seconds = time_call(
                    lambda e=engine, p=compiled[query_name], s=strategy:
                    e.execute(p, strategy=s),
                    repeats=repeats)
                cells[(row, f"{count} nodes")] = seconds
    columns = [f"{count} nodes" for count in node_counts]
    return render_table(
        "Table 1. Evaluation time (seconds) for the queries in Figure 5",
        row_labels, columns, cells, highlight_best_per_group=3)


if __name__ == "__main__":
    print(generate_table())
